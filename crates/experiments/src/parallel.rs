//! Deterministic parallel execution of independent sweep points.
//!
//! Parameter sweeps (Experiment 5's cluster-count × backend × profile grid,
//! the scalability bench, `run_all`) consist of fully independent simulation
//! runs: each run derives every seed it needs from its own parameters, never
//! from execution order.  This module fans those runs across a bounded
//! worker pool (`--jobs N`) built on `std::thread::scope` — no external
//! crates — and merges the results **in deterministic run order**, so the
//! output of a parallel sweep is bitwise-identical to the sequential one
//! (asserted by a regression test and re-checked by `bench_perf` on every CI
//! run).
//!
//! Work distribution uses a shared atomic cursor: workers claim the next
//! unclaimed index, so stragglers never serialise the tail of the sweep.
//! Which worker computes which index is scheduling-dependent, but since
//! results are placed by index, the merge order — and therefore every CSV —
//! is not.
//!
//! That independence claim is what the **schedule-permutation harness**
//! ([`ClaimSchedule`] + [`run_indexed_with_schedule`]) stress-tests: it
//! drives the same worker pool through adversarial claim orders — reversed,
//! strided, seeded shuffles, with OS-yield stalls injected mid-sweep — that
//! the production `fetch_add` cursor would only reach under pathological
//! thread scheduling.  The merged output must stay identical under every
//! schedule; `exp5::run_sweep_with_backend_schedule` extends the check to
//! byte-identical sweep CSVs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Default worker count: the machine's available parallelism, falling back
/// to 1 when it cannot be determined.
#[must_use]
pub fn default_jobs() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `task(0..count)` across at most `jobs` worker threads and returns
/// the results ordered by index (identical to a sequential `map`).
///
/// `jobs <= 1` (or `count <= 1`) degrades to a plain sequential loop on the
/// calling thread, which is also the reference ordering the parallel path
/// must reproduce.
///
/// # Panics
/// Propagates a panic from any task once all workers have been joined.
pub fn run_indexed<T, F>(count: usize, jobs: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(count.max(1));
    if jobs <= 1 {
        return (0..count).map(task).collect();
    }

    let next = AtomicUsize::new(0);
    let task = &task;
    let next = &next;
    let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);

    let per_worker: Vec<Vec<(usize, T)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= count {
                            break;
                        }
                        out.push((index, task(index)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker must not panic"))
            .collect()
    });

    for (index, value) in per_worker.into_iter().flatten() {
        debug_assert!(slots[index].is_none(), "index {index} computed twice");
        slots[index] = Some(value);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index computed exactly once"))
        .collect()
}

/// An explicit claim order for [`run_indexed_with_schedule`]: the shared
/// cursor walks positions `0..count`, and the worker that wins position `p`
/// computes sweep index `order[p]` — optionally stalling (yielding its OS
/// time slice) first, to widen the window for other workers to overtake it.
///
/// Production sweeps always claim in ascending index order; a schedule
/// replays the claim orders that only adversarial thread scheduling would
/// produce, so the determinism regression tests can cover them on demand
/// instead of hoping the OS eventually does.
#[derive(Debug, Clone)]
pub struct ClaimSchedule {
    /// `order[p]` is the sweep index claimed at cursor position `p`; must be
    /// a permutation of `0..count`.
    order: Vec<usize>,
    /// `stall[p]` injects a `yield_now` before computing position `p`.
    stall: Vec<bool>,
    /// Human-readable name used in assertion messages.
    label: String,
}

impl ClaimSchedule {
    fn new(label: &str, order: Vec<usize>) -> Self {
        let stall = vec![false; order.len()];
        ClaimSchedule {
            order,
            stall,
            label: label.to_string(),
        }
    }

    /// The production claim order: ascending indices, no stalls.
    #[must_use]
    pub fn identity(count: usize) -> Self {
        ClaimSchedule::new("identity", (0..count).collect())
    }

    /// Claims the sweep back to front — the straggler-heavy tail first.
    #[must_use]
    pub fn reversed(count: usize) -> Self {
        ClaimSchedule::new("reversed", (0..count).rev().collect())
    }

    /// Claims every `stride`-th index first (0, s, 2s, …, then 1, s+1, …),
    /// interleaving distant sweep points the way a skewed pool would.
    ///
    /// # Panics
    /// Panics when `stride` is zero.
    #[must_use]
    pub fn strided(count: usize, stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        let mut order = Vec::with_capacity(count);
        for phase in 0..stride.min(count.max(1)) {
            order.extend((phase..count).step_by(stride));
        }
        ClaimSchedule::new(&format!("strided({stride})"), order)
    }

    /// A seeded Fisher–Yates shuffle (SplitMix64 stream): reproducible
    /// "random" claim orders without any external crate.
    #[must_use]
    pub fn shuffled(count: usize, seed: u64) -> Self {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut order: Vec<usize> = (0..count).collect();
        for i in (1..count).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        ClaimSchedule::new(&format!("shuffled({seed:#x})"), order)
    }

    /// Marks every `each`-th claim position as a stall point: the winning
    /// worker yields its OS time slice before computing, so neighbouring
    /// claims race ahead of it.
    ///
    /// # Panics
    /// Panics when `each` is zero.
    #[must_use]
    pub fn with_stalls(mut self, each: usize) -> Self {
        assert!(each > 0, "stall period must be positive");
        for (position, stall) in self.stall.iter_mut().enumerate() {
            *stall = position % each == 0;
        }
        self.label.push_str(&format!("+stalls({each})"));
        self
    }

    /// The canonical adversarial suite the determinism tests iterate:
    /// reversed, strided, and seeded-shuffle claim orders, with and without
    /// stall injection.
    #[must_use]
    pub fn adversarial_suite(count: usize) -> Vec<Self> {
        vec![
            ClaimSchedule::reversed(count),
            ClaimSchedule::strided(count, 3),
            ClaimSchedule::shuffled(count, 0xDEC0_DE15),
            ClaimSchedule::shuffled(count, 0x5EED_CAFE).with_stalls(2),
            ClaimSchedule::reversed(count).with_stalls(1),
        ]
    }

    /// The schedule's human-readable name, used in assertion messages.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Asserts `order` is a permutation of `0..count`.
    fn validate(&self, count: usize) {
        assert_eq!(
            self.order.len(),
            count,
            "schedule {} covers {} positions, sweep has {count}",
            self.label,
            self.order.len()
        );
        let mut seen = vec![false; count];
        for &index in &self.order {
            assert!(
                index < count && !seen[index],
                "schedule {} is not a permutation of 0..{count}",
                self.label
            );
            seen[index] = true;
        }
    }
}

/// [`run_indexed`], but claiming work through an explicit [`ClaimSchedule`]
/// instead of ascending cursor order.  Results still come back ordered by
/// index, so for any pure `task` the output must equal `run_indexed`'s —
/// that equality is the schedule-permutation regression the determinism
/// tests assert.
///
/// # Panics
/// Panics when the schedule is not a permutation of `0..count`, and
/// propagates task panics like [`run_indexed`].
pub fn run_indexed_with_schedule<T, F>(
    count: usize,
    jobs: usize,
    schedule: &ClaimSchedule,
    task: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    schedule.validate(count);
    let jobs = jobs.max(1).min(count.max(1));
    if jobs <= 1 {
        // The sequential reference still honours the claim order (and is
        // what makes `jobs = 1` a meaningful baseline for the harness):
        // compute in schedule order, merge back into index order.
        let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
        slots.resize_with(count, || None);
        for &index in &schedule.order {
            slots[index] = Some(task(index));
        }
        return slots
            .into_iter()
            .map(|slot| slot.expect("schedule visits every index"))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let task = &task;
    let cursor = &cursor;
    let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);

    let per_worker: Vec<Vec<(usize, T)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let position = cursor.fetch_add(1, Ordering::Relaxed);
                        if position >= count {
                            break;
                        }
                        if schedule.stall[position] {
                            thread::yield_now();
                        }
                        let index = schedule.order[position];
                        out.push((index, task(index)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker must not panic"))
            .collect()
    });

    for (index, value) in per_worker.into_iter().flatten() {
        debug_assert!(slots[index].is_none(), "index {index} computed twice");
        slots[index] = Some(value);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index computed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        // Task durations vary wildly with index so completion order differs
        // from submission order; the merge must restore index order anyway.
        let out = run_indexed(64, 8, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * 3
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_sequential() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let sequential = run_indexed(100, 1, f);
        for jobs in [2, 4, 16, 1000] {
            assert_eq!(run_indexed(100, jobs, f), sequential, "jobs={jobs}");
        }
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(1, 0, |i| i), vec![0]);
        assert_eq!(run_indexed(3, 999, |i| i), vec![0, 1, 2]);
        assert!(default_jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "sweep worker must not panic")]
    fn worker_panics_propagate() {
        let _ = run_indexed(8, 2, |i| {
            assert!(i != 5, "boom");
            i
        });
    }

    #[test]
    fn schedules_are_permutations() {
        for count in [0usize, 1, 2, 17, 64] {
            for schedule in ClaimSchedule::adversarial_suite(count) {
                schedule.validate(count);
            }
            ClaimSchedule::identity(count).validate(count);
            ClaimSchedule::strided(count, 1).validate(count);
            ClaimSchedule::strided(count, count + 1).validate(count);
        }
    }

    #[test]
    fn strided_claims_every_phase_in_order() {
        let schedule = ClaimSchedule::strided(7, 3);
        assert_eq!(schedule.order, vec![0, 3, 6, 1, 4, 2, 5]);
    }

    #[test]
    fn every_adversarial_schedule_reproduces_the_sequential_merge() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let reference = run_indexed(33, 1, f);
        for schedule in ClaimSchedule::adversarial_suite(33) {
            for jobs in [1usize, 2, 8] {
                assert_eq!(
                    run_indexed_with_schedule(33, jobs, &schedule, f),
                    reference,
                    "schedule {} with jobs={jobs} diverged",
                    schedule.label()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn duplicate_claim_indices_are_rejected() {
        let mut schedule = ClaimSchedule::identity(4);
        schedule.order[2] = 1;
        let _ = run_indexed_with_schedule(4, 2, &schedule, |i| i);
    }

    #[test]
    #[should_panic(expected = "covers 3 positions")]
    fn wrong_length_schedules_are_rejected() {
        let schedule = ClaimSchedule::identity(3);
        let _ = run_indexed_with_schedule(4, 2, &schedule, |i| i);
    }
}
