//! End-to-end differential tests: the GFAs' cursor/cache query path vs. the
//! query-per-rank oracle, at federation scale.
//!
//! [`DirectoryQueryPath::Cursor`] (the default) must be *observationally
//! invisible*: job outcomes, bank balances, negotiation traffic, directory
//! charges, per-GFA counters and the exp5 CSV panels all have to come out
//! bitwise-identical to a run that executes every ranking query from
//! scratch.  The deterministic test covers the exp5 sweep on both backends;
//! the property test additionally interleaves scripted departures and
//! repricings so epoch invalidation (cache resets, stale-cursor
//! revalidation) is exercised mid-run.

use grid_experiments::exp5;
use grid_experiments::workloads::{replicated_workloads, WorkloadOptions};
use grid_federation_core::federation::{
    run_federation, DirectoryQueryPath, FederationConfig, SchedulingMode,
};
use grid_federation_core::{DirectoryBackend, FederationReport};
use grid_workload::PopulationProfile;
use proptest::prelude::*;

/// Asserts two reports are bitwise-indistinguishable except for the quote
/// caches' hit/miss observability counters.
fn assert_reports_identical(a: &FederationReport, b: &FederationReport, context: &str) {
    // Digest-first: the hash-chained run digest commits to every job
    // outcome, bank transfer and message charge, so this comparison
    // subsumes the field-by-field oracle below (kept because its failures
    // say *which* field diverged).
    assert_eq!(a.digest, b.digest, "{context}: run digests diverged");
    assert_eq!(a.jobs, b.jobs, "{context}: job records diverged");
    assert_eq!(a.resources, b.resources, "{context}: resource metrics diverged");
    assert_eq!(a.sim_end.to_bits(), b.sim_end.to_bits(), "{context}: sim end diverged");
    assert_eq!(a.backend, b.backend);
    // Message ledger: negotiation and directory accounting, per job and per
    // GFA.
    assert_eq!(a.messages.total_messages(), b.messages.total_messages(), "{context}");
    assert_eq!(a.messages.directory_messages(), b.messages.directory_messages(), "{context}");
    assert_eq!(
        a.messages.directory_seconds().to_bits(),
        b.messages.directory_seconds().to_bits(),
        "{context}: simulated lookup time diverged"
    );
    assert_eq!(a.messages.per_job(), b.messages.per_job(), "{context}");
    assert_eq!(a.messages.per_job_directory(), b.messages.per_job_directory(), "{context}");
    assert_eq!(a.messages.all_gfas(), b.messages.all_gfas(), "{context}");
    // Directory telemetry (served queries, routed-lookup average) must be
    // replayed exactly by the cache path.
    assert_eq!(a.directory_queries, b.directory_queries, "{context}");
    assert_eq!(
        a.directory_avg_route_messages.to_bits(),
        b.directory_avg_route_messages.to_bits(),
        "{context}: route telemetry diverged"
    );
    // Bank balances, bitwise.
    for i in 0..a.resources.len() {
        assert_eq!(
            a.bank.earnings(i).to_bits(),
            b.bank.earnings(i).to_bits(),
            "{context}: GFA {i} balance diverged"
        );
    }
}

fn run_path(
    size: usize,
    profile: PopulationProfile,
    backend: DirectoryBackend,
    query_path: DirectoryQueryPath,
    departures: Vec<(usize, f64)>,
    repricings: Vec<(usize, f64, f64)>,
) -> FederationReport {
    let options = WorkloadOptions::quick();
    let setup = replicated_workloads(size, profile, &options);
    run_federation(
        setup.resources,
        setup.workloads,
        FederationConfig {
            mode: SchedulingMode::Economy,
            seed: options.seed,
            utilization_horizon: Some(options.duration),
            directory: backend,
            query_path,
            departures,
            repricings,
            ..FederationConfig::default()
        },
    )
}

#[test]
fn exp5_run_is_bitwise_unchanged_by_the_cursor_path() {
    for backend in DirectoryBackend::ALL {
        for oft in [0u32, 50, 100] {
            let profile = PopulationProfile::new(oft);
            let cursor = run_path(10, profile, backend, DirectoryQueryPath::Cursor, vec![], vec![]);
            let oracle = run_path(10, profile, backend, DirectoryQueryPath::PerRank, vec![], vec![]);
            assert_reports_identical(&cursor, &oracle, &format!("{backend:?} oft={oft}"));
            // The cursor run actually exercised the cache (the oracle run,
            // by construction, never touches it).
            assert!(cursor.directory_cache.hits > 0, "{backend:?}: cache never hit");
            assert!(cursor.directory_cache.misses > 0);
            assert_eq!(oracle.directory_cache.hits, 0);
            assert_eq!(oracle.directory_cache.misses, 0);
        }
    }
}

#[test]
fn exp5_sweeps_are_bitwise_unchanged_by_the_cursor_path() {
    // The acceptance criterion at sweep level, digest-first: the audit
    // manifests of both query paths must be byte-identical.  The original
    // CSV string comparison (Fig. 10/11 panels, directory panels, backend
    // comparison) is kept as the independent oracle behind
    // `AUDIT_CSV_ORACLE=1`.
    let sizes = [8usize, 12];
    let profiles = [PopulationProfile::new(50)];
    let sweeps_for = |query_path: DirectoryQueryPath| -> Vec<exp5::ScalabilitySweep> {
        DirectoryBackend::ALL
            .iter()
            .map(|&backend| {
                let reports: Vec<Vec<FederationReport>> = sizes
                    .iter()
                    .map(|&size| {
                        profiles
                            .iter()
                            .map(|&p| run_path(size, p, backend, query_path, vec![], vec![]))
                            .collect()
                    })
                    .collect();
                exp5::ScalabilitySweep {
                    backend,
                    sizes: sizes.to_vec(),
                    profiles: profiles.to_vec(),
                    reports,
                }
            })
            .collect()
    };
    let cursor = sweeps_for(DirectoryQueryPath::Cursor);
    let oracle = sweeps_for(DirectoryQueryPath::PerRank);
    assert_eq!(
        exp5::digest_manifest(&cursor),
        exp5::digest_manifest(&oracle),
        "digest manifest diverged between query paths"
    );
    if std::env::var_os("AUDIT_CSV_ORACLE").is_some_and(|v| v == "1") {
        let cursor_csvs = exp5::render_all_csvs(&cursor);
        let oracle_csvs = exp5::render_all_csvs(&oracle);
        assert_eq!(cursor_csvs.len(), oracle_csvs.len());
        for ((name_a, csv_a), (name_b, csv_b)) in cursor_csvs.iter().zip(&oracle_csvs) {
            assert_eq!(name_a, name_b);
            assert_eq!(csv_a, csv_b, "CSV '{name_a}' diverged between query paths");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Scripted departures and repricings bump the directory epoch mid-run;
    /// cache resets and stale-cursor revalidation must stay invisible in
    /// the report, bit for bit, on both backends.
    #[test]
    fn mutating_runs_are_bitwise_unchanged_by_the_cursor_path(
        oft in 0u32..=100,
        departer in 0usize..8,
        depart_frac in 0.1f64..0.9,
        repricer in 0usize..8,
        reprice_frac in 0.1f64..0.9,
        new_price in 0.2f64..12.0,
        second_reprice in 0.05f64..6.0,
        chord in proptest::bool::ANY,
    ) {
        let backend = if chord { DirectoryBackend::Chord } else { DirectoryBackend::Ideal };
        let duration = WorkloadOptions::quick().duration;
        let departures = vec![(departer, depart_frac * duration)];
        let repricings = vec![
            (repricer, reprice_frac * duration, new_price),
            (repricer, (reprice_frac * 0.5 + 0.5) * duration, second_reprice),
        ];
        let profile = PopulationProfile::new(oft);
        let cursor = run_path(
            8, profile, backend, DirectoryQueryPath::Cursor,
            departures.clone(), repricings.clone(),
        );
        let oracle = run_path(
            8, profile, backend, DirectoryQueryPath::PerRank,
            departures, repricings,
        );
        assert_reports_identical(&cursor, &oracle, &format!("{backend:?} oft={oft}"));
    }
}
