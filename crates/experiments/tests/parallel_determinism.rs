//! Regression test for the acceptance criterion that parallel sweeps are
//! **bitwise-deterministic**: running the Experiment 5 sweep sequentially
//! (`jobs = 1`) and through the worker pool (`jobs = 4`) must render
//! byte-identical CSVs for every panel and for the backend comparison table
//! (the same CSV set `bench_perf` gates CI on, via `exp5::render_all_csvs`).

use grid_experiments::exp5;
use grid_experiments::workloads::WorkloadOptions;
use grid_federation_core::DirectoryBackend;
use grid_workload::PopulationProfile;

#[test]
fn parallel_sweep_csvs_are_bitwise_identical_to_sequential() {
    // The CI smoke configuration: small enough to run on every push,
    // complete enough to cover both backends and the whole sweep path.
    let options = WorkloadOptions::quick();
    let sizes = [8usize, 16];
    let profiles = [PopulationProfile::new(50)];

    let run = |jobs: usize| -> Vec<exp5::ScalabilitySweep> {
        DirectoryBackend::ALL
            .iter()
            .map(|&backend| {
                exp5::run_sweep_with_backend_jobs(&options, &sizes, &profiles, backend, jobs)
            })
            .collect()
    };

    let sequential = exp5::render_all_csvs(&run(1));
    let parallel = exp5::render_all_csvs(&run(4));

    assert_eq!(sequential.len(), parallel.len());
    for ((name_s, csv_s), (name_p, csv_p)) in sequential.iter().zip(&parallel) {
        assert_eq!(name_s, name_p);
        assert_eq!(
            csv_s, csv_p,
            "CSV {name_s} differs between sequential and parallel sweeps"
        );
    }
}
