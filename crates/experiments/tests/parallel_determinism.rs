//! Regression tests for the acceptance criterion that parallel sweeps are
//! **bitwise-deterministic**: running the Experiment 5 sweep sequentially
//! (`jobs = 1`), through the worker pool (`jobs = 4`), and through every
//! adversarial claim-order permutation must render byte-identical CSVs for
//! every panel and for the backend comparison table (the same CSV set
//! `bench_perf` gates CI on, via `exp5::render_all_csvs`).

use grid_experiments::exp5;
use grid_experiments::parallel::ClaimSchedule;
use grid_experiments::workloads::WorkloadOptions;
use grid_federation_core::DirectoryBackend;
use grid_workload::PopulationProfile;

#[test]
fn parallel_sweep_csvs_are_bitwise_identical_to_sequential() {
    // The CI smoke configuration: small enough to run on every push,
    // complete enough to cover both backends and the whole sweep path.
    let options = WorkloadOptions::quick();
    let sizes = [8usize, 16];
    let profiles = [PopulationProfile::new(50)];

    let run = |jobs: usize| -> Vec<exp5::ScalabilitySweep> {
        DirectoryBackend::ALL
            .iter()
            .map(|&backend| {
                exp5::run_sweep_with_backend_jobs(&options, &sizes, &profiles, backend, jobs)
            })
            .collect()
    };

    let sequential = exp5::render_all_csvs(&run(1));
    let parallel = exp5::render_all_csvs(&run(4));

    assert_eq!(sequential.len(), parallel.len());
    for ((name_s, csv_s), (name_p, csv_p)) in sequential.iter().zip(&parallel) {
        assert_eq!(name_s, name_p);
        assert_eq!(
            csv_s, csv_p,
            "CSV {name_s} differs between sequential and parallel sweeps"
        );
    }
}

/// The schedule-permutation harness: the worker pool claims sweep points in
/// adversarial orders (reversed, strided, seeded shuffles, with OS-yield
/// stalls injected) that the production cursor would only reach under
/// pathological thread scheduling, and the merged CSVs must remain
/// byte-identical to the sequential reference under every one of them.
#[test]
fn adversarial_claim_schedules_render_identical_csvs() {
    let options = WorkloadOptions::quick();
    let sizes = [8usize, 16];
    let profiles = [PopulationProfile::new(50)];
    let backend = DirectoryBackend::Chord;
    let point_count = sizes.len() * profiles.len();

    let reference = exp5::render_all_csvs(&[exp5::run_sweep_with_backend_jobs(
        &options, &sizes, &profiles, backend, 1,
    )]);

    for schedule in ClaimSchedule::adversarial_suite(point_count) {
        let sweep = exp5::run_sweep_with_backend_schedule(
            &options, &sizes, &profiles, backend, 4, &schedule,
        );
        let permuted = exp5::render_all_csvs(&[sweep]);
        assert_eq!(reference.len(), permuted.len());
        for ((name_r, csv_r), (name_p, csv_p)) in reference.iter().zip(&permuted) {
            assert_eq!(name_r, name_p);
            assert_eq!(
                csv_r, csv_p,
                "CSV {name_r} differs under claim schedule {}",
                schedule.label()
            );
        }
    }
}
