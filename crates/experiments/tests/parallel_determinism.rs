//! Regression tests for the acceptance criterion that parallel sweeps are
//! **bitwise-deterministic**: running the Experiment 5 sweep sequentially
//! (`jobs = 1`), through the worker pool (`jobs = 4`), and through every
//! adversarial claim-order permutation must produce identical runs.
//!
//! Identity is asserted digest-first: every run's hash-chained
//! [`grid_federation_core::RunDigest`] commits to the full job/bank/message
//! history, so comparing the digest manifests is the O(runs) equivalent of
//! diffing every rendered CSV.  The original CSV byte-comparison is kept as
//! the independent oracle behind `AUDIT_CSV_ORACLE=1` (CI runs it on the
//! differential job; it is redundant on every push).

use grid_experiments::exp5;
use grid_experiments::parallel::ClaimSchedule;
use grid_experiments::workloads::WorkloadOptions;
use grid_federation_core::DirectoryBackend;
use grid_workload::PopulationProfile;

fn csv_oracle_enabled() -> bool {
    std::env::var_os("AUDIT_CSV_ORACLE").is_some_and(|v| v == "1")
}

fn assert_sweeps_identical(reference: &[exp5::ScalabilitySweep], other: &[exp5::ScalabilitySweep], what: &str) {
    let manifest_r = exp5::digest_manifest(reference);
    let manifest_o = exp5::digest_manifest(other);
    assert!(!manifest_r.is_empty(), "manifests must cover the runs");
    assert_eq!(manifest_r, manifest_o, "digest manifest differs: {what}");
    if csv_oracle_enabled() {
        let csvs_r = exp5::render_all_csvs(reference);
        let csvs_o = exp5::render_all_csvs(other);
        assert_eq!(csvs_r.len(), csvs_o.len());
        for ((name_r, csv_r), (name_o, csv_o)) in csvs_r.iter().zip(&csvs_o) {
            assert_eq!(name_r, name_o);
            assert_eq!(csv_r, csv_o, "CSV {name_r} differs: {what}");
        }
    }
}

#[test]
fn parallel_sweep_runs_are_bitwise_identical_to_sequential() {
    // The CI smoke configuration: small enough to run on every push,
    // complete enough to cover all backends and the whole sweep path.
    let options = WorkloadOptions::quick();
    let sizes = [8usize, 16];
    let profiles = [PopulationProfile::new(50)];

    let run = |jobs: usize| -> Vec<exp5::ScalabilitySweep> {
        DirectoryBackend::ALL
            .iter()
            .map(|&backend| {
                exp5::run_sweep_with_backend_jobs(&options, &sizes, &profiles, backend, jobs)
            })
            .collect()
    };

    let sequential = run(1);
    let parallel = run(4);
    assert_sweeps_identical(&sequential, &parallel, "sequential vs parallel");
}

/// The schedule-permutation harness: the worker pool claims sweep points in
/// adversarial orders (reversed, strided, seeded shuffles, with OS-yield
/// stalls injected) that the production cursor would only reach under
/// pathological thread scheduling, and the merged runs must remain
/// digest-identical to the sequential reference under every one of them.
#[test]
fn adversarial_claim_schedules_produce_identical_runs() {
    let options = WorkloadOptions::quick();
    let sizes = [8usize, 16];
    let profiles = [PopulationProfile::new(50)];
    let backend = DirectoryBackend::Chord;
    let point_count = sizes.len() * profiles.len();

    let reference =
        vec![exp5::run_sweep_with_backend_jobs(&options, &sizes, &profiles, backend, 1)];

    for schedule in ClaimSchedule::adversarial_suite(point_count) {
        let sweep = exp5::run_sweep_with_backend_schedule(
            &options, &sizes, &profiles, backend, 4, &schedule,
        );
        assert_sweeps_identical(
            &reference,
            std::slice::from_ref(&sweep),
            &format!("claim schedule {}", schedule.label()),
        );
    }
}
