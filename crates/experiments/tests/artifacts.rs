//! Validity and freshness of the committed observability artifacts
//! (`artifacts/exp1_quick_metrics.json`, `artifacts/exp1_quick_trace.json`):
//! both must parse, the trace must be a well-formed Chrome Trace document
//! with per-track monotone timestamps, and re-running the quick workload
//! with the sinks armed must reproduce both files **byte for byte** — the
//! same determinism pin `MANIFEST_digests.txt` gives the result CSVs.

use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use grid_experiments::exp1;
use grid_experiments::workloads::WorkloadOptions;
use grid_federation_core::SpanCollector;
use grid_obs::json::{parse, Json};

fn artifact(name: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../artifacts").join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed artifact {} must exist: {e}", path.display()));
    (path, text)
}

#[test]
fn committed_metrics_artifact_parses_and_carries_the_registry_sections() {
    let (_, text) = artifact("exp1_quick_metrics.json");
    let doc = parse(&text).expect("metrics artifact must parse as JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_f64), Some(1.0));
    for section in ["counters", "sums", "histograms", "per_gfa"] {
        assert!(doc.get(section).is_some(), "metrics artifact must carry {section:?}");
    }
    // The quick run records waits, so the wait histogram cannot be empty.
    let wait_count = doc
        .get("histograms")
        .and_then(|h| h.get("job_wait_seconds"))
        .and_then(|h| h.get("count"))
        .and_then(Json::as_f64)
        .expect("job_wait_seconds histogram with a count");
    assert!(wait_count > 0.0, "the committed quick run must have observed waits");
}

#[test]
fn committed_trace_artifact_is_valid_chrome_trace() {
    let (_, text) = artifact("exp1_quick_trace.json");
    let doc = parse(&text).expect("trace artifact must parse as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents must be an array");
    assert!(!events.is_empty(), "the committed trace must carry events");
    let mut last: Vec<((u64, u64), f64)> = Vec::new();
    for event in events {
        let ph = event.get("ph").and_then(Json::as_str).expect("every event has ph");
        assert!(matches!(ph, "M" | "X" | "s" | "f"), "unexpected phase {ph:?}");
        if ph == "M" {
            continue;
        }
        let pid = event.get("pid").and_then(Json::as_f64).expect("pid") as u64;
        let tid = event.get("tid").and_then(Json::as_f64).expect("tid") as u64;
        let ts = event.get("ts").and_then(Json::as_f64).expect("ts");
        match last.iter_mut().find(|(k, _)| *k == (pid, tid)) {
            Some((_, prev)) => {
                assert!(ts >= *prev, "track ({pid},{tid}) went backwards: {ts} < {prev}");
                *prev = ts;
            }
            None => last.push(((pid, tid), ts)),
        }
    }
}

#[test]
fn committed_artifacts_are_bitwise_reproducible() {
    let tracer = Rc::new(RefCell::new(SpanCollector::new()));
    let result =
        exp1::run_with_observers(&WorkloadOptions::quick(), Some(Rc::clone(&tracer)), None);
    let (metrics_path, committed_metrics) = artifact("exp1_quick_metrics.json");
    assert_eq!(
        result.report.metrics.to_json(),
        committed_metrics,
        "stale {}: regenerate with `cargo run --release --bin exp1_independent -- \
         --quick --metrics-out artifacts/exp1_quick_metrics.json \
         --trace-out artifacts/exp1_quick_trace.json`",
        metrics_path.display()
    );
    let (trace_path, committed_trace) = artifact("exp1_quick_trace.json");
    assert_eq!(
        tracer.borrow().to_chrome_trace(),
        committed_trace,
        "stale {}: regenerate alongside the metrics artifact",
        trace_path.display()
    );
}
