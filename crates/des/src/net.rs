//! Deterministic network fault model for the DES transport.
//!
//! The simulator's default transport is perfect: every message is delivered
//! exactly once, in order, after its nominal latency.  This module provides
//! the knobs to make a run *unreliable* — per-link message loss, latency
//! jitter, duplication and bounded reordering — while keeping the run
//! exactly reproducible:
//!
//! * every link draws its faults from its own [`SimRng`] sub-stream, salted
//!   so that enabling faults never perturbs workload or churn draws;
//! * loss is modelled **out-of-band**: the sender is assumed to retransmit
//!   on timeout with bounded exponential backoff until a transmission gets
//!   through (the final attempt always does), so the fault layer converts a
//!   drop probability into a deterministic *transmission count* and backoff
//!   wait, charged as extra traffic rather than as a lost message;
//! * duplicates are real — the consumer is expected to deliver the duplicate
//!   as a genuine second event and suppress it with a receiver-side
//!   [`DedupWindow`], which is how handler idempotency gets exercised.
//!
//! The model deliberately keeps the *semantic* delivery at its nominal
//! latency: retransmissions and jitter are accounted in seconds and message
//! counts but do not move the simulation timeline, so a faulty run reaches
//! bit-identical job outcomes to its lossless twin while paying visibly more
//! traffic.  See the federation crate for the protocol-level integration.

use crate::rng::SimRng;

/// Largest exponent used for exponential backoff (`2^16` ≈ 65 536 × the base
/// timeout).  Capping the exponent keeps the delay finite for any retry
/// count instead of overflowing the shift.
pub const MAX_BACKOFF_EXPONENT: u32 = 16;

/// Retransmission backoff before attempt `attempt` (0-based): the base
/// `timeout` doubled per attempt, with the exponent saturated at
/// [`MAX_BACKOFF_EXPONENT`] so large attempt counts stay finite.
#[must_use]
pub fn backoff_delay(timeout: f64, attempt: u32) -> f64 {
    let exponent = attempt.min(MAX_BACKOFF_EXPONENT);
    timeout * f64::from(1u32 << exponent)
}

/// Latency jitter distribution added (statistically) to each delivery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Jitter {
    /// No jitter: deliveries observe exactly the nominal latency.
    None,
    /// Exponentially distributed extra latency with the given mean (seconds).
    Exponential {
        /// Mean extra latency in seconds (> 0).
        mean: f64,
    },
    /// Uniformly distributed extra latency in `[min, max)` seconds.
    Uniform {
        /// Lower bound of the extra latency (seconds).
        min: f64,
        /// Upper bound of the extra latency (seconds).
        max: f64,
    },
}

impl Jitter {
    /// Draws one jitter sample in seconds (0 for [`Jitter::None`]).
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            Jitter::None => 0.0,
            Jitter::Exponential { mean } => rng.exponential(mean),
            Jitter::Uniform { min, max } => rng.uniform_range(min, max),
        }
    }

    /// Returns `true` if this distribution ever produces non-zero jitter.
    #[must_use]
    pub fn is_active(&self) -> bool {
        !matches!(self, Jitter::None)
    }
}

/// Per-link fault parameters for an unreliable network.
///
/// The default value is fully inactive (no loss, no jitter, no duplication):
/// a federation configured with an inactive fault config is digest-identical
/// to one with no fault config at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkFaultConfig {
    /// Probability that any single transmission is dropped (each drop forces
    /// a timeout + retransmission; the attempt after the last allowed
    /// retransmission always succeeds, so delivery is eventual).
    pub drop: f64,
    /// Extra-latency distribution applied to deliveries (statistics only;
    /// the semantic timeline is unaffected).
    pub jitter: Jitter,
    /// Probability that a delivered message is duplicated in flight.  The
    /// duplicate is delivered as a real event and must be suppressed by the
    /// receiver's [`DedupWindow`].
    pub duplicate: f64,
    /// Upper bound (seconds) on how much later than the original a duplicate
    /// may arrive; duplicates never arrive earlier than the original, so a
    /// window of `w` bounds reordering to `w` seconds.
    pub reorder_window: f64,
    /// Base retransmission timeout in seconds (doubled per attempt, capped
    /// by [`MAX_BACKOFF_EXPONENT`]).
    pub timeout: f64,
    /// Maximum number of retransmissions per message.  Bounds both the
    /// traffic amplification and the worst-case backoff wait.
    pub max_retransmits: u32,
}

impl Default for NetworkFaultConfig {
    fn default() -> Self {
        NetworkFaultConfig {
            drop: 0.0,
            jitter: Jitter::None,
            duplicate: 0.0,
            reorder_window: 0.0,
            timeout: 30.0,
            max_retransmits: 8,
        }
    }
}

impl NetworkFaultConfig {
    /// Returns `true` if any fault mechanism can actually fire.  An inactive
    /// config behaves exactly like having no fault layer at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.drop > 0.0 || self.duplicate > 0.0 || self.jitter.is_active()
    }

    /// The "moderate faults" preset used by the unreliable-network
    /// experiment: 2% loss, exponential jitter, 1% duplication.
    #[must_use]
    pub fn moderate() -> Self {
        NetworkFaultConfig {
            drop: 0.02,
            jitter: Jitter::Exponential { mean: 0.2 },
            duplicate: 0.01,
            reorder_window: 5.0,
            timeout: 30.0,
            max_retransmits: 8,
        }
    }
}

/// Outcome of planning one message transmission over a faulty link.
///
/// All quantities are *extra* cost relative to the perfect transport: the
/// semantic delivery itself is not represented here.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransmissionPlan {
    /// Number of transmissions that were dropped and had to be repeated
    /// (each one is an extra message on the wire).
    pub retransmissions: u32,
    /// Total sender-side backoff wait accumulated across the drops, in
    /// seconds (exponential, capped per [`backoff_delay`]).
    pub backoff_seconds: f64,
    /// Jitter drawn for the successful delivery, in seconds.
    pub jitter_seconds: f64,
    /// Whether the delivered message was duplicated in flight.
    pub duplicate: bool,
    /// Extra delay of the duplicate relative to the original delivery
    /// (within the configured reorder window); 0 when `duplicate` is false.
    pub duplicate_delay: f64,
}

/// The fault state of one directed link: a dedicated random stream from
/// which that link's drops, jitter and duplications are drawn.
///
/// Links are derived with a caller-chosen salt so the fault streams are
/// disjoint from every other stream family in the simulation.
pub struct LinkFaults {
    rng: SimRng,
}

impl std::fmt::Debug for LinkFaults {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkFaults")
            .field("seed", &self.rng.seed())
            .finish()
    }
}

impl LinkFaults {
    /// Creates the fault stream for one link.  `stream_id` must uniquely
    /// identify the link within the chosen salt family (e.g.
    /// `src * n + dst`).
    #[must_use]
    pub fn new(master_seed: u64, salt: u64, stream_id: u64) -> Self {
        LinkFaults {
            rng: SimRng::derive(master_seed ^ salt, stream_id),
        }
    }

    /// Plans one message transmission: draws the drop sequence, the delivery
    /// jitter and the duplication decision, in a fixed order so plans are
    /// reproducible for a given config.
    pub fn plan(&mut self, cfg: &NetworkFaultConfig) -> TransmissionPlan {
        let mut plan = TransmissionPlan::default();
        while plan.retransmissions < cfg.max_retransmits && self.rng.bernoulli(cfg.drop) {
            plan.backoff_seconds += backoff_delay(cfg.timeout, plan.retransmissions);
            plan.retransmissions += 1;
        }
        plan.jitter_seconds = cfg.jitter.sample(&mut self.rng);
        if self.rng.bernoulli(cfg.duplicate) {
            plan.duplicate = true;
            plan.duplicate_delay = self.rng.uniform_range(0.0, cfg.reorder_window.max(0.0));
        }
        plan
    }

    /// Draws only the drop/retransmit count for one transmission, without
    /// jitter or duplication.  Used for charge-modelled traffic (directory
    /// lookups, publishes) where only the message count matters.
    pub fn drops(&mut self, cfg: &NetworkFaultConfig) -> u32 {
        let mut dropped = 0;
        while dropped < cfg.max_retransmits && self.rng.bernoulli(cfg.drop) {
            dropped += 1;
        }
        dropped
    }
}

/// Receiver-side anti-replay window (IPsec style): a 64-entry sliding bitmap
/// over message sequence numbers that admits each sequence number at most
/// once and rejects anything older than the window.
///
/// The window base is monotone non-decreasing — the invariants sentry checks
/// exactly that — so a duplicate can never be re-admitted by sliding the
/// window backwards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedupWindow {
    base: u64,
    seen: u64,
}

/// Width of the [`DedupWindow`] bitmap in sequence numbers.
pub const DEDUP_WINDOW_WIDTH: u64 = 64;

impl DedupWindow {
    /// Admits `seq` if it has not been seen before and is not older than the
    /// window; returns `false` for duplicates and stale sequence numbers.
    pub fn admit(&mut self, seq: u64) -> bool {
        if seq < self.base {
            return false;
        }
        if seq >= self.base + DEDUP_WINDOW_WIDTH {
            let shift = seq - (self.base + DEDUP_WINDOW_WIDTH - 1);
            if shift >= DEDUP_WINDOW_WIDTH {
                self.seen = 0;
            } else {
                // Bit positions are `seq - base`; advancing the base shrinks
                // every live position, so the bitmap shifts toward bit 0.
                self.seen >>= shift;
            }
            self.base += shift;
        }
        let bit = 1u64 << (seq - self.base);
        if self.seen & bit != 0 {
            return false;
        }
        self.seen |= bit;
        true
    }

    /// The lowest sequence number the window can still admit.  Monotone
    /// non-decreasing over the window's lifetime.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Corrupting test double: rewinds the window to its initial state, so a
    /// previously admitted sequence number would be admitted again.  The
    /// invariants sentry must catch the base regression.
    #[cfg(feature = "invariants")]
    pub fn corrupt_rewind(&mut self) {
        self.base = 0;
        self.seen = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_config_plans_nothing() {
        let cfg = NetworkFaultConfig::default();
        assert!(!cfg.is_active());
        let mut link = LinkFaults::new(7, 0xABCD, 3);
        for _ in 0..100 {
            let plan = link.plan(&cfg);
            assert_eq!(plan, TransmissionPlan::default());
            assert_eq!(link.drops(&cfg), 0);
        }
    }

    #[test]
    fn moderate_preset_is_active() {
        assert!(NetworkFaultConfig::moderate().is_active());
        assert!(NetworkFaultConfig {
            jitter: Jitter::Uniform { min: 0.0, max: 1.0 },
            ..NetworkFaultConfig::default()
        }
        .is_active());
    }

    #[test]
    fn plans_are_reproducible() {
        let cfg = NetworkFaultConfig::moderate();
        let mut a = LinkFaults::new(42, 0x5EED, 11);
        let mut b = LinkFaults::new(42, 0x5EED, 11);
        for _ in 0..500 {
            assert_eq!(a.plan(&cfg), b.plan(&cfg));
        }
    }

    #[test]
    fn distinct_links_draw_distinct_fault_sequences() {
        let cfg = NetworkFaultConfig {
            drop: 0.5,
            ..NetworkFaultConfig::moderate()
        };
        let seq = |id: u64| -> Vec<TransmissionPlan> {
            let mut link = LinkFaults::new(42, 0x5EED, id);
            (0..64).map(|_| link.plan(&cfg)).collect()
        };
        assert_ne!(seq(0), seq(1));
    }

    #[test]
    fn retransmissions_are_bounded() {
        let cfg = NetworkFaultConfig {
            drop: 1.0,
            max_retransmits: 5,
            ..NetworkFaultConfig::default()
        };
        let mut link = LinkFaults::new(1, 2, 3);
        for _ in 0..20 {
            let plan = link.plan(&cfg);
            assert_eq!(plan.retransmissions, 5);
            assert_eq!(link.drops(&cfg), 5);
        }
    }

    #[test]
    fn backoff_is_exponential_then_capped() {
        assert_eq!(backoff_delay(30.0, 0), 30.0);
        assert_eq!(backoff_delay(30.0, 1), 60.0);
        assert_eq!(backoff_delay(30.0, 4), 480.0);
        let cap = 30.0 * f64::from(1u32 << MAX_BACKOFF_EXPONENT);
        assert_eq!(backoff_delay(30.0, MAX_BACKOFF_EXPONENT), cap);
        // Saturates instead of overflowing the shift for huge attempt counts.
        assert_eq!(backoff_delay(30.0, u32::MAX), cap);
        assert!(backoff_delay(30.0, u32::MAX).is_finite());
    }

    #[test]
    fn duplicate_delay_respects_reorder_window() {
        let cfg = NetworkFaultConfig {
            duplicate: 1.0,
            reorder_window: 2.5,
            ..NetworkFaultConfig::default()
        };
        let mut link = LinkFaults::new(9, 9, 9);
        for _ in 0..200 {
            let plan = link.plan(&cfg);
            assert!(plan.duplicate);
            assert!((0.0..2.5).contains(&plan.duplicate_delay));
        }
    }

    #[test]
    fn dedup_admits_each_sequence_number_once() {
        let mut w = DedupWindow::default();
        assert!(w.admit(1));
        assert!(w.admit(2));
        assert!(!w.admit(1), "replay must be rejected");
        assert!(!w.admit(2), "replay must be rejected");
        assert!(w.admit(5), "gaps are fine");
        assert!(w.admit(3), "reordered-but-fresh within the window is fine");
        assert!(!w.admit(5));
    }

    #[test]
    fn dedup_window_slides_and_rejects_stale() {
        let mut w = DedupWindow::default();
        assert!(w.admit(100));
        assert!(w.base() > 0, "window must have slid past zero");
        assert!(!w.admit(1), "stale sequence numbers are rejected");
        assert!(w.admit(100 + DEDUP_WINDOW_WIDTH * 3), "far jumps clear the bitmap");
        assert!(!w.admit(100), "the original is now stale");
        // Base never decreases as the window slides.
        let mut prev = 0;
        let mut w2 = DedupWindow::default();
        for seq in [3u64, 80, 80, 200, 190, 1000] {
            let _ = w2.admit(seq);
            assert!(w2.base() >= prev);
            prev = w2.base();
        }
    }

    #[test]
    fn dedup_edge_of_window_boundary() {
        let mut w = DedupWindow::default();
        assert!(w.admit(0));
        assert!(w.admit(DEDUP_WINDOW_WIDTH - 1), "still inside the window");
        assert_eq!(w.base(), 0);
        assert!(w.admit(DEDUP_WINDOW_WIDTH), "first slide by exactly one");
        assert_eq!(w.base(), 1);
        assert!(!w.admit(DEDUP_WINDOW_WIDTH), "and it is remembered");
    }

    #[test]
    fn dedup_monotone_stream_never_rejects_fresh_sequences() {
        // The production pattern: senders allocate 1, 2, 3, …; originals must
        // all be admitted no matter how many slides happen, and every replay
        // (a delivered duplicate) must still be rejected afterwards.
        let mut w = DedupWindow::default();
        for seq in 1..=DEDUP_WINDOW_WIDTH * 4 {
            assert!(w.admit(seq), "fresh seq {seq} wrongly rejected");
            assert!(!w.admit(seq), "replay of seq {seq} wrongly admitted");
        }
    }

    #[cfg(feature = "invariants")]
    #[test]
    fn corrupt_rewind_regresses_base() {
        let mut w = DedupWindow::default();
        assert!(w.admit(500));
        let before = w.base();
        w.corrupt_rewind();
        assert!(w.base() < before);
        assert!(w.admit(500), "corrupted window re-admits a replay");
    }
}
