//! The simulation driver.

use crate::entity::{Context, Entity, EntityId};
use crate::event::EventKind;
use crate::queue::EventQueue;
use crate::rng::SimRng;
use crate::stats::SimStats;
use crate::time::SimTime;
use crate::trace::{truncate_label, EventProfiler, TraceRecord, TraceSink};

/// Why a [`Simulation::run`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The future-event list drained completely.
    Exhausted,
    /// The configured horizon was reached with events still pending.
    HorizonReached,
    /// An entity called [`Context::stop`].
    Stopped,
    /// The configured maximum number of delivered events was reached
    /// (safety valve against non-terminating models).
    EventLimit,
}

/// A single deterministic discrete-event simulation run.
///
/// The type parameter `M` is the model's message/payload type.
pub struct Simulation<M> {
    entities: Vec<Option<Box<dyn Entity<M>>>>,
    names: Vec<String>,
    queue: EventQueue<M>,
    clock: SimTime,
    stats: SimStats,
    rng: SimRng,
    horizon: Option<SimTime>,
    max_events: u64,
    /// Installed trace sink, if any.  Kept optional so the per-event
    /// `format!("{:?}", payload)` label is only paid when someone records.
    trace: Option<Box<dyn TraceSink>>,
    /// Installed handler profiler, if any.  The disabled path is a single
    /// `Option` discriminant test per event — measured by the dispatch
    /// perf gate, which is exactly the hot path this sits on.
    profiler: Option<Box<dyn EventProfiler<M>>>,
    started: bool,
}

impl<M: std::fmt::Debug> Simulation<M> {
    /// Creates a simulation with the given master seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Simulation {
            entities: Vec::new(),
            names: Vec::new(),
            queue: EventQueue::new(),
            clock: SimTime::ZERO,
            stats: SimStats::default(),
            rng: SimRng::derive(seed, u64::MAX),
            horizon: None,
            max_events: u64::MAX,
            trace: None,
            profiler: None,
            started: false,
        }
    }

    /// Sets a horizon: events with a timestamp strictly greater than `t` are
    /// never delivered and `run` returns [`RunOutcome::HorizonReached`] when
    /// the first such event is encountered.
    pub fn set_horizon(&mut self, t: SimTime) {
        self.horizon = Some(t);
    }

    /// Caps the total number of delivered events (default: unlimited).
    pub fn set_max_events(&mut self, limit: u64) {
        self.max_events = limit;
    }

    /// Installs a trace sink that receives every delivered event.
    pub fn set_trace(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Installs a handler profiler whose `enter`/`exit` bracket every
    /// `Entity::on_event` invocation.  The profiler sees only the event
    /// payload (by reference) and cannot touch sim state.
    pub fn set_profiler(&mut self, profiler: Box<dyn EventProfiler<M>>) {
        self.profiler = Some(profiler);
    }

    /// Registers an entity and returns its id.
    ///
    /// # Panics
    /// Panics if called after the simulation has started.
    pub fn add_entity(&mut self, entity: Box<dyn Entity<M>>) -> EntityId {
        assert!(
            !self.started,
            "entities must be registered before the simulation starts"
        );
        let id = EntityId::new(self.entities.len());
        self.names.push(entity.name().to_string());
        self.entities.push(Some(entity));
        id
    }

    /// Number of registered entities.
    #[must_use]
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// The name an entity registered with.
    ///
    /// # Panics
    /// Panics if the id is unknown.
    #[must_use]
    pub fn entity_name(&self, id: EntityId) -> &str {
        &self.names[id.index()]
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Engine statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Corrupting test double: rewinds the earliest pending event to
    /// `new_time` (see [`EventQueue::corrupt_earliest_time`]), so the next
    /// delivery trips the engine's time-monotonicity assert if `new_time`
    /// lies in the simulated past.  Returns `false` on an empty queue.
    #[cfg(feature = "invariants")]
    pub fn corrupt_earliest_event_time(&mut self, new_time: SimTime) -> bool {
        self.queue.corrupt_earliest_time(new_time)
    }

    /// Immutable access to a registered entity, downcast by the caller.
    ///
    /// Returns `None` while that entity is being invoked (i.e. from within
    /// its own `on_event`) — model code normally only calls this after the
    /// run has finished to collect results.
    #[must_use]
    pub fn entity(&self, id: EntityId) -> Option<&dyn Entity<M>> {
        self.entities
            .get(id.index())
            .and_then(|slot| slot.as_deref())
    }

    /// Removes an entity from the simulation after a run, returning ownership
    /// to the caller so results can be extracted without borrowing games.
    ///
    /// # Panics
    /// Panics if the id is unknown or the entity was already taken.
    pub fn take_entity(&mut self, id: EntityId) -> Box<dyn Entity<M>> {
        self.entities[id.index()]
            .take()
            .expect("entity already taken or currently executing")
    }

    /// Runs until the event list drains, the horizon or event limit is hit,
    /// or an entity stops the simulation.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(None)
    }

    /// Runs up to the given time (inclusive); equivalent to setting a horizon
    /// for this call only.
    pub fn run_to(&mut self, until: SimTime) -> RunOutcome {
        self.run_until(Some(until))
    }

    fn effective_horizon(&self, until: Option<SimTime>) -> Option<SimTime> {
        match (self.horizon, until) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    fn run_until(&mut self, until: Option<SimTime>) -> RunOutcome {
        let horizon = self.effective_horizon(until);
        let mut stop_requested = false;

        if !self.started {
            self.started = true;
            // Deliver on_start in registration order for determinism.
            for idx in 0..self.entities.len() {
                let mut entity = self.entities[idx]
                    .take()
                    .expect("entity missing during start-up");
                let mut ctx = Context {
                    now: self.clock,
                    self_id: EntityId::new(idx),
                    queue: &mut self.queue,
                    rng: &mut self.rng,
                    stop_requested: &mut stop_requested,
                };
                entity.on_start(&mut ctx);
                self.entities[idx] = Some(entity);
            }
        }

        let outcome = loop {
            if stop_requested {
                break RunOutcome::Stopped;
            }
            if self.stats.events_delivered >= self.max_events {
                break RunOutcome::EventLimit;
            }
            // Single heap traversal: pop directly (bounded by the horizon
            // when one is set) instead of a peek followed by a pop.
            let event = match horizon {
                None => match self.queue.pop() {
                    Some(event) => event,
                    None => break RunOutcome::Exhausted,
                },
                Some(h) => match self.queue.pop_at_or_before(h) {
                    Some(event) => event,
                    None if self.queue.is_empty() => break RunOutcome::Exhausted,
                    None => {
                        self.clock = h;
                        break RunOutcome::HorizonReached;
                    }
                },
            };
            // Time monotonicity: a debug assertion normally, promoted to a
            // hard assert under the `invariants` feature so release-mode CI
            // test runs still catch a clock running backwards.
            #[cfg(feature = "invariants")]
            assert!(
                event.time >= self.clock,
                "event queue returned an event from the past ({:?} < {:?})",
                event.time,
                self.clock
            );
            #[cfg(not(feature = "invariants"))]
            debug_assert!(
                event.time >= self.clock,
                "event queue returned an event from the past"
            );
            self.clock = event.time;

            self.stats.events_delivered += 1;
            match event.kind {
                EventKind::Message if event.src != event.dst => {
                    self.stats.messages_delivered += 1;
                }
                EventKind::Timer => self.stats.timers_delivered += 1,
                EventKind::Message => {}
            }

            if let Some(trace) = self.trace.as_deref_mut() {
                // The debug-format label is only rendered when a sink is
                // actually installed; untraced runs never pay for it.
                let label = truncate_label(format!("{:?}", event.payload), 96);
                trace.record(TraceRecord {
                    time: event.time,
                    seq: event.seq,
                    src: event.src,
                    dst: event.dst,
                    kind: event.kind,
                    label,
                });
            }

            let dst = event.dst.index();
            let mut entity = self.entities[dst]
                .take()
                .unwrap_or_else(|| panic!("event addressed to unknown entity E{dst}"));
            let mut ctx = Context {
                now: self.clock,
                self_id: event.dst,
                queue: &mut self.queue,
                rng: &mut self.rng,
                stop_requested: &mut stop_requested,
            };
            match self.profiler.as_deref_mut() {
                None => entity.on_event(event, &mut ctx),
                Some(profiler) => {
                    profiler.enter(&event.payload);
                    entity.on_event(event, &mut ctx);
                    profiler.exit();
                }
            }
            self.entities[dst] = Some(entity);
        };

        self.stats.events_scheduled = self.queue.scheduled_total();
        self.stats.events_dropped_at_stop = self.queue.len() as u64;
        self.stats.end_time = self.clock;

        // Deliver on_finish exactly once, after the final outcome is known.
        let mut finish_stop = false;
        for idx in 0..self.entities.len() {
            if let Some(mut entity) = self.entities[idx].take() {
                let mut ctx = Context {
                    now: self.clock,
                    self_id: EntityId::new(idx),
                    queue: &mut self.queue,
                    rng: &mut self.rng,
                    stop_requested: &mut finish_stop,
                };
                entity.on_finish(&mut ctx);
                self.entities[idx] = Some(entity);
            }
        }

        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Tick,
        Payload(u64),
    }

    /// Entity that re-schedules itself `remaining` times at a fixed period.
    struct Clocker {
        period: f64,
        remaining: u32,
        fired: u32,
        finished: bool,
    }

    impl Entity<Msg> for Clocker {
        fn name(&self) -> &str {
            "clocker"
        }
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if self.remaining > 0 {
                ctx.timer(self.period, Msg::Tick);
            }
        }
        fn on_event(&mut self, _event: Event<Msg>, ctx: &mut Context<'_, Msg>) {
            self.fired += 1;
            self.remaining -= 1;
            if self.remaining > 0 {
                ctx.timer(self.period, Msg::Tick);
            }
        }
        fn on_finish(&mut self, _ctx: &mut Context<'_, Msg>) {
            self.finished = true;
        }
    }

    struct Forwarder {
        next: Option<EntityId>,
        seen: Vec<u64>,
    }

    impl Entity<Msg> for Forwarder {
        fn name(&self) -> &str {
            "forwarder"
        }
        fn on_event(&mut self, event: Event<Msg>, ctx: &mut Context<'_, Msg>) {
            if let Msg::Payload(v) = event.payload {
                self.seen.push(v);
                if let Some(next) = self.next {
                    ctx.send(next, 1.0, Msg::Payload(v + 1));
                }
            }
        }
    }

    struct Kickoff {
        target: EntityId,
    }
    impl Entity<Msg> for Kickoff {
        fn name(&self) -> &str {
            "kickoff"
        }
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.send(self.target, 0.0, Msg::Payload(0));
        }
        fn on_event(&mut self, _event: Event<Msg>, _ctx: &mut Context<'_, Msg>) {}
    }

    #[test]
    fn periodic_timer_runs_to_exhaustion() {
        let mut sim = Simulation::new(1);
        let id = sim.add_entity(Box::new(Clocker {
            period: 2.0,
            remaining: 5,
            fired: 0,
            finished: false,
        }));
        let outcome = sim.run();
        assert_eq!(outcome, RunOutcome::Exhausted);
        assert_eq!(sim.now(), SimTime::new(10.0));
        assert_eq!(sim.stats().timers_delivered, 5);
        assert_eq!(sim.entity_name(id), "clocker");
        let entity = sim.take_entity(id);
        // Downcasting is not provided by the engine; the model keeps its own
        // handles.  Here we just confirm the entity survived the run.
        assert_eq!(entity.name(), "clocker");
    }

    #[test]
    fn horizon_stops_delivery() {
        let mut sim = Simulation::new(1);
        sim.add_entity(Box::new(Clocker {
            period: 2.0,
            remaining: 100,
            fired: 0,
            finished: false,
        }));
        sim.set_horizon(SimTime::new(9.0));
        let outcome = sim.run();
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(sim.now(), SimTime::new(9.0));
        assert_eq!(sim.stats().timers_delivered, 4); // t = 2,4,6,8
        assert_eq!(sim.stats().events_dropped_at_stop, 1);
    }

    #[test]
    fn event_limit_is_a_safety_valve() {
        let mut sim = Simulation::new(1);
        sim.add_entity(Box::new(Clocker {
            period: 1.0,
            remaining: 1_000_000,
            fired: 0,
            finished: false,
        }));
        sim.set_max_events(10);
        assert_eq!(sim.run(), RunOutcome::EventLimit);
        assert_eq!(sim.stats().events_delivered, 10);
    }

    #[test]
    fn chain_of_messages_is_delivered_in_order() {
        let mut sim = Simulation::new(7);
        let c = sim.add_entity(Box::new(Forwarder { next: None, seen: vec![] }));
        let b = sim.add_entity(Box::new(Forwarder { next: Some(c), seen: vec![] }));
        let a = sim.add_entity(Box::new(Forwarder { next: Some(b), seen: vec![] }));
        sim.add_entity(Box::new(Kickoff { target: a }));
        assert_eq!(sim.run(), RunOutcome::Exhausted);
        assert_eq!(sim.stats().messages_delivered, 3);
        assert_eq!(sim.now(), SimTime::new(2.0));
    }

    #[test]
    fn deterministic_across_runs() {
        fn run_once() -> (u64, f64) {
            let mut sim = Simulation::new(99);
            let c = sim.add_entity(Box::new(Forwarder { next: None, seen: vec![] }));
            let b = sim.add_entity(Box::new(Forwarder { next: Some(c), seen: vec![] }));
            sim.add_entity(Box::new(Kickoff { target: b }));
            sim.add_entity(Box::new(Clocker {
                period: 0.7,
                remaining: 20,
                fired: 0,
                finished: false,
            }));
            sim.run();
            (sim.stats().events_delivered, sim.now().as_secs())
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    #[should_panic(expected = "before the simulation starts")]
    fn adding_entity_after_start_panics() {
        let mut sim: Simulation<Msg> = Simulation::new(1);
        sim.add_entity(Box::new(Kickoff { target: EntityId::new(0) }));
        sim.run();
        sim.add_entity(Box::new(Kickoff { target: EntityId::new(0) }));
    }

    #[test]
    fn profiler_brackets_every_handler_in_strict_pairs() {
        use std::cell::RefCell;
        use std::rc::Rc;
        struct CountingProfiler {
            entered: Rc<RefCell<u64>>,
            open: bool,
        }
        impl crate::trace::EventProfiler<Msg> for CountingProfiler {
            fn enter(&mut self, _payload: &Msg) {
                assert!(!self.open, "enter without a matching exit");
                self.open = true;
                *self.entered.borrow_mut() += 1;
            }
            fn exit(&mut self) {
                assert!(self.open, "exit without a matching enter");
                self.open = false;
            }
        }
        let entered = Rc::new(RefCell::new(0u64));
        let mut sim = Simulation::new(5);
        sim.add_entity(Box::new(Clocker {
            period: 1.0,
            remaining: 4,
            fired: 0,
            finished: false,
        }));
        sim.set_profiler(Box::new(CountingProfiler { entered: Rc::clone(&entered), open: false }));
        assert_eq!(sim.run(), RunOutcome::Exhausted);
        assert_eq!(*entered.borrow(), sim.stats().events_delivered);
    }

    #[test]
    fn trace_captures_event_ordering() {
        use crate::trace::VecTrace;
        // Indirect check: install a VecTrace, run, then confirm counters via
        // stats (the sink itself is consumed by the simulation).
        let mut sim = Simulation::new(3);
        let c = sim.add_entity(Box::new(Forwarder { next: None, seen: vec![] }));
        sim.add_entity(Box::new(Kickoff { target: c }));
        sim.set_trace(Box::new(VecTrace::new()));
        sim.run();
        assert_eq!(sim.stats().messages_delivered, 1);
    }
}
