//! Engine-level statistics.
//!
//! These counters describe the *simulation engine* (events, wall-clock cost),
//! not the simulated system.  Model-level metrics (utilization, incentive,
//! message classes, …) live in `grid-federation-core::metrics`.

use crate::time::SimTime;

/// Counters accumulated by [`crate::Simulation`] while running.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Events delivered to entities via `on_event`.
    pub events_delivered: u64,
    /// Events scheduled (including those still pending or discarded at the
    /// horizon).
    pub events_scheduled: u64,
    /// Messages between two *different* entities (a subset of
    /// `events_delivered`).
    pub messages_delivered: u64,
    /// Self-timers delivered.
    pub timers_delivered: u64,
    /// Events that were still pending when the simulation stopped (horizon
    /// reached or explicit stop).
    pub events_dropped_at_stop: u64,
    /// Final simulation clock value.
    pub end_time: SimTime,
}

impl SimStats {
    /// Fraction of delivered events that were inter-entity messages.
    ///
    /// Returns 0 when nothing was delivered.
    #[must_use]
    pub fn message_fraction(&self) -> f64 {
        if self.events_delivered == 0 {
            0.0
        } else {
            self.messages_delivered as f64 / self.events_delivered as f64
        }
    }
}

/// Streaming summary statistics (count / mean / min / max / variance) used by
/// several crates to summarise per-job and per-GFA observations without
/// storing every sample.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation (Welford update).
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Minimum observation, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation, or 0 when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sample variance (n-1 denominator), or 0 with fewer than two samples.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_fraction() {
        let mut s = SimStats::default();
        assert_eq!(s.message_fraction(), 0.0);
        s.events_delivered = 10;
        s.messages_delivered = 4;
        assert!((s.message_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn running_stats_basic() {
        let mut r = RunningStats::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.min(), 0.0);
        assert_eq!(r.max(), 0.0);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
        assert!((r.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert!((r.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0 + 20.0).collect();
        let mut all = RunningStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &data[..400] {
            left.push(x);
        }
        for &x in &data[400..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-6);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 3.0);
        let empty = RunningStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }
}
