//! The future-event list.
//!
//! An **index-based 4-ary min-heap** keyed on `(time, seq)`.  Two events
//! scheduled for the same instant are delivered in the order they were
//! scheduled, which makes every simulation run fully deterministic — a
//! property the Grid-Federation experiments rely on (identical seeds must
//! reproduce identical figures).
//!
//! The heap itself stores only small fixed-size keys (`time`, `seq`, slot
//! index); the payloads live in a slab indexed by slot.  Sift operations
//! therefore move 24-byte keys regardless of how wide the model's message
//! enum is — the federation's `FedMessage` carries whole jobs — and the
//! 4-ary layout halves the tree depth relative to a binary heap.  The
//! pre-overhaul `BinaryHeap<Event<M>>` layout is retained as
//! [`BinaryHeapEventQueue`] so the micro benches (and `bench_perf`) keep
//! measuring the choice instead of assuming it.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::event::Event;
use crate::time::SimTime;

/// Arity of the index heap: 4 keeps the tree shallow while children still
/// share a cache line's worth of keys.
const D: usize = 4;

/// Compact heap entry: total order on `(time, seq)`, payload referenced by
/// slab slot.
#[derive(Debug, Clone, Copy)]
struct HeapKey {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl HeapKey {
    #[inline]
    fn earlier_than(&self, other: &HeapKey) -> bool {
        match self.time.cmp(&other.time) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => self.seq < other.seq,
        }
    }
}

/// Future-event list with deterministic ordering.
pub struct EventQueue<M> {
    heap: Vec<HeapKey>,
    slots: Vec<Option<Event<M>>>,
    free: Vec<u32>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity, useful when the
    /// approximate number of in-flight events is known (e.g. one per queued
    /// job).
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(cap),
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedules an event.  The event's `seq` field is overwritten with the
    /// next sequence number so callers never need to manage it.
    ///
    /// # Panics
    /// Panics if more than `u32::MAX` events are pending simultaneously.
    pub fn push(&mut self, mut event: Event<M>) {
        event.seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let key = HeapKey {
            time: event.time,
            seq: event.seq,
            slot: match self.free.pop() {
                Some(slot) => {
                    self.slots[slot as usize] = Some(event);
                    slot
                }
                None => {
                    // Documented capacity limit (see `# Panics`): the 4-byte
                    // heap key is what makes the queue cache-friendly.
                    // fedlint: allow(hot-path-unwrap)
                    let slot = u32::try_from(self.slots.len())
                        .expect("more than u32::MAX pending events");
                    self.slots.push(Some(event));
                    slot
                }
            },
        };
        self.heap.push(key);
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<M>> {
        let root = *self.heap.first()?;
        // `first()` just returned, so the heap is non-empty and neither `?`
        // below can actually bail — written `?`-style to keep panicking
        // branches off the dispatch hot path.
        let last = self.heap.pop()?;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
        let slot = &mut self.slots[root.slot as usize];
        debug_assert!(slot.is_some(), "heap key references a filled slot");
        let event = slot.take()?;
        self.free.push(root.slot);
        Some(event)
    }

    /// Removes and returns the earliest event if its timestamp is `<= limit`;
    /// leaves the queue untouched otherwise.  This is the single-traversal
    /// primitive the simulation loop uses instead of a separate
    /// peek-then-pop.
    pub fn pop_at_or_before(&mut self, limit: SimTime) -> Option<Event<M>> {
        if self.heap.first()?.time > limit {
            return None;
        }
        self.pop()
    }

    /// Returns the timestamp of the earliest pending event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|k| k.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled through this queue.
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Corrupting test double: rewrites the earliest pending event's
    /// timestamp to `new_time` **without** restoring heap order, emulating a
    /// scheduler bug that delivers an event from the past.  Returns `false`
    /// on an empty queue.  Only exists so the invariant tests can prove the
    /// engine's time-monotonicity check fires; never compiled into normal
    /// builds.
    #[cfg(feature = "invariants")]
    pub fn corrupt_earliest_time(&mut self, new_time: SimTime) -> bool {
        let Some(root) = self.heap.first() else {
            return false;
        };
        if let Some(event) = self.slots[root.slot as usize].as_mut() {
            event.time = new_time;
        }
        self.heap[0].time = new_time;
        true
    }

    /// Drops every pending event, e.g. when a run is aborted at its horizon.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free.clear();
    }

    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / D;
            if self.heap[idx].earlier_than(&self.heap[parent]) {
                self.heap.swap(idx, parent);
                idx = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut idx: usize) {
        let len = self.heap.len();
        loop {
            let first_child = idx * D + 1;
            if first_child >= len {
                break;
            }
            let mut best = first_child;
            let last_child = (first_child + D).min(len);
            for child in first_child + 1..last_child {
                if self.heap[child].earlier_than(&self.heap[best]) {
                    best = child;
                }
            }
            if self.heap[best].earlier_than(&self.heap[idx]) {
                self.heap.swap(idx, best);
                idx = best;
            } else {
                break;
            }
        }
    }
}

/// The pre-overhaul future-event list: a `BinaryHeap` whose entries carry
/// the whole `Event<M>`, so every sift memmoves the full payload.
///
/// Retained purely as the comparison baseline for the event-queue micro
/// benches and `bench_perf` — the engine itself uses [`EventQueue`].  Both
/// implementations deliver identical event orderings (a differential test
/// asserts it), so the layout decision is driven by measured numbers.
pub struct BinaryHeapEventQueue<M> {
    heap: BinaryHeap<HeapEntry<M>>,
    next_seq: u64,
}

struct HeapEntry<M> {
    event: Event<M>,
}

impl<M> PartialEq for HeapEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.event.time == other.event.time && self.event.seq == other.event.seq
    }
}
impl<M> Eq for HeapEntry<M> {}

impl<M> PartialOrd for HeapEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for HeapEntry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: earliest time (then lowest seq) is the "greatest" entry so
        // that BinaryHeap::pop returns it first.
        other
            .event
            .time
            .cmp(&self.event.time)
            .then_with(|| other.event.seq.cmp(&self.event.seq))
    }
}

impl<M> Default for BinaryHeapEventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> BinaryHeapEventQueue<M> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        BinaryHeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BinaryHeapEventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules an event, assigning the next sequence number.
    pub fn push(&mut self, mut event: Event<M>) {
        event.seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop().map(|e| e.event)
    }

    /// Returns the timestamp of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.event.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityId;
    use crate::event::EventKind;

    fn event(t: f64, payload: u32) -> Event<u32> {
        Event {
            time: SimTime::new(t),
            seq: 0,
            src: EntityId::new(0),
            dst: EntityId::new(0),
            kind: EventKind::Message,
            payload,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(event(5.0, 1));
        q.push(event(1.0, 2));
        q.push(event(3.0, 3));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(event(7.0, i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(event(2.0, 0));
        q.push(event(1.0, 1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::new(1.0)));
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        // scheduled_total is cumulative and unaffected by clear().
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn sequence_numbers_are_assigned_by_queue() {
        let mut q = EventQueue::new();
        let mut e = event(1.0, 9);
        e.seq = 999; // should be overwritten
        q.push(e);
        q.push(event(1.0, 10));
        let first = q.pop().unwrap();
        let second = q.pop().unwrap();
        assert_eq!(first.seq, 0);
        assert_eq!(second.seq, 1);
        assert_eq!(first.payload, 9);
    }

    #[test]
    fn pop_at_or_before_respects_the_limit() {
        let mut q = EventQueue::new();
        q.push(event(5.0, 0));
        q.push(event(10.0, 1));
        assert!(q.pop_at_or_before(SimTime::new(4.0)).is_none());
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_at_or_before(SimTime::new(5.0)).unwrap().payload, 0);
        assert!(q.pop_at_or_before(SimTime::new(9.999)).is_none());
        assert_eq!(q.pop_at_or_before(SimTime::new(10.0)).unwrap().payload, 1);
        assert!(q.pop_at_or_before(SimTime::new(1e9)).is_none());
    }

    #[test]
    fn slots_are_recycled_under_churn() {
        let mut q = EventQueue::new();
        for round in 0..50u32 {
            for i in 0..8u32 {
                q.push(event(f64::from(round * 10 + i % 3), i));
            }
            for _ in 0..8 {
                assert!(q.pop().is_some());
            }
        }
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 400);
    }

    #[test]
    fn dary_and_binary_heap_layouts_deliver_identical_orderings() {
        // The layout decision must never change delivery order: feed the
        // same pseudo-random schedule to both queues (interleaving pushes
        // and pops to exercise slot recycling) and require identical output.
        let mut dary = EventQueue::new();
        let mut binary = BinaryHeapEventQueue::new();
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut out_dary = Vec::new();
        let mut out_binary = Vec::new();
        for i in 0..500u32 {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let t = f64::from((state >> 33) as u32 % 97);
            dary.push(event(t, i));
            binary.push(event(t, i));
            if state % 3 == 0 {
                out_dary.push(dary.pop().map(|e| (e.time, e.seq, e.payload)));
                out_binary.push(binary.pop().map(|e| (e.time, e.seq, e.payload)));
            }
        }
        while let Some(e) = dary.pop() {
            out_dary.push(Some((e.time, e.seq, e.payload)));
        }
        while let Some(e) = binary.pop() {
            out_binary.push(Some((e.time, e.seq, e.payload)));
        }
        assert_eq!(out_dary, out_binary);
    }
}
