//! The future-event list.
//!
//! A binary min-heap keyed on `(time, seq)`.  Two events scheduled for the
//! same instant are delivered in the order they were scheduled, which makes
//! every simulation run fully deterministic — a property the Grid-Federation
//! experiments rely on (identical seeds must reproduce identical figures).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::event::Event;
use crate::time::SimTime;

/// Internal heap entry; reversed ordering turns `BinaryHeap` (a max-heap)
/// into a min-heap on `(time, seq)`.
struct HeapEntry<M> {
    event: Event<M>,
}

impl<M> PartialEq for HeapEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.event.time == other.event.time && self.event.seq == other.event.seq
    }
}
impl<M> Eq for HeapEntry<M> {}

impl<M> PartialOrd for HeapEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for HeapEntry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: earliest time (then lowest seq) is the "greatest" entry so
        // that BinaryHeap::pop returns it first.
        other
            .event
            .time
            .cmp(&self.event.time)
            .then_with(|| other.event.seq.cmp(&self.event.seq))
    }
}

/// Future-event list with deterministic ordering.
pub struct EventQueue<M> {
    heap: BinaryHeap<HeapEntry<M>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity, useful when the
    /// approximate number of in-flight events is known (e.g. one per queued
    /// job).
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedules an event.  The event's `seq` field is overwritten with the
    /// next sequence number so callers never need to manage it.
    pub fn push(&mut self, mut event: Event<M>) {
        event.seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(HeapEntry { event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop().map(|e| e.event)
    }

    /// Returns the timestamp of the earliest pending event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.event.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled through this queue.
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drops every pending event, e.g. when a run is aborted at its horizon.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityId;
    use crate::event::EventKind;

    fn event(t: f64, payload: u32) -> Event<u32> {
        Event {
            time: SimTime::new(t),
            seq: 0,
            src: EntityId::new(0),
            dst: EntityId::new(0),
            kind: EventKind::Message,
            payload,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(event(5.0, 1));
        q.push(event(1.0, 2));
        q.push(event(3.0, 3));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(event(7.0, i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(event(2.0, 0));
        q.push(event(1.0, 1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::new(1.0)));
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        // scheduled_total is cumulative and unaffected by clear().
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn sequence_numbers_are_assigned_by_queue() {
        let mut q = EventQueue::new();
        let mut e = event(1.0, 9);
        e.seq = 999; // should be overwritten
        q.push(e);
        q.push(event(1.0, 10));
        let first = q.pop().unwrap();
        let second = q.pop().unwrap();
        assert_eq!(first.seq, 0);
        assert_eq!(second.seq, 1);
        assert_eq!(first.payload, 9);
    }
}
