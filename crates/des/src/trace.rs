//! Optional event tracing and the observability hook interfaces.
//!
//! A [`TraceSink`] receives one [`TraceRecord`] per delivered event.  The
//! default simulation uses [`NullTrace`] (zero overhead); tests and debugging
//! sessions can install [`VecTrace`] or a custom sink to inspect the exact
//! event ordering of a run.
//!
//! The sink is *span-aware*: beyond the per-event [`record`], models can
//! push causal [`SpanRecord`]s (a named interval on one entity's track) and
//! [`FlowRecord`]s (directed cross-entity arrows, e.g. a dispatch linked by
//! its envelope sequence number) through the same trait.  Both have no-op
//! defaults so event-only sinks keep working unchanged; the span-collecting
//! implementation lives in `grid-obs`.
//!
//! [`EventProfiler`] is the self-profiling hook: the engine brackets every
//! handler invocation with [`enter`](EventProfiler::enter) /
//! [`exit`](EventProfiler::exit) when a profiler is installed.  The trait
//! deliberately carries no clock — `grid-des` itself stays free of
//! wall-clock reads; a profiler implementation takes its own timestamps and
//! keeps them strictly outside sim state.
//!
//! [`record`]: TraceSink::record

use crate::entity::EntityId;
use crate::event::EventKind;
use crate::time::SimTime;

/// The conceptual track a span or flow belongs to, rendered as one timeline
/// row per entity in trace viewers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanTrack {
    /// Whole job lifecycles (submit → conclusion).
    Lifecycle,
    /// Negotiation round-trips between GFAs.
    Negotiation,
    /// Directory probes and lookups.
    Directory,
    /// Job execution intervals on the executing cluster.
    Execution,
}

impl SpanTrack {
    /// Stable per-entity track index (Chrome Trace `tid`).
    #[must_use]
    pub fn tid(self) -> u64 {
        match self {
            SpanTrack::Lifecycle => 0,
            SpanTrack::Negotiation => 1,
            SpanTrack::Directory => 2,
            SpanTrack::Execution => 3,
        }
    }

    /// Human-readable track name for trace-viewer metadata.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanTrack::Lifecycle => "lifecycle",
            SpanTrack::Negotiation => "negotiation",
            SpanTrack::Directory => "directory",
            SpanTrack::Execution => "execution",
        }
    }
}

/// A completed causal span: a named interval on one entity's track.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Owning entity index (Chrome Trace `pid`).
    pub gfa: usize,
    /// Track the span renders on.
    pub track: SpanTrack,
    /// Static span name (e.g. `"job"`, `"negotiation"`).
    pub name: &'static str,
    /// Span start, in simulated time.
    pub start: SimTime,
    /// Span end, in simulated time (`end >= start`).
    pub end: SimTime,
    /// Free-form argument string (job id, outcome, …).
    pub detail: String,
}

/// One endpoint of a directed cross-entity flow arrow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowRecord {
    /// Flow identity; both endpoints carry the same id.  Models derive it
    /// from the envelope sequence number when one exists, so traced flows
    /// stay linked across entities exactly as the wire protocol linked
    /// them.
    pub id: u64,
    /// Entity this endpoint sits on.
    pub gfa: usize,
    /// Track this endpoint renders on.
    pub track: SpanTrack,
    /// Endpoint time, in simulated time.
    pub time: SimTime,
    /// `true` for the producing endpoint, `false` for the consuming one.
    pub start: bool,
}

/// Brackets every delivered-event handler invocation when installed via
/// `Simulation::set_profiler`.  Implementations own their timing source and
/// aggregation; the engine only guarantees `enter` and `exit` are called in
/// strict pairs around `Entity::on_event`.
pub trait EventProfiler<M> {
    /// Called immediately before the handler runs, with the event payload
    /// (for per-event-type classification).
    fn enter(&mut self, payload: &M);
    /// Called immediately after the handler returns.
    fn exit(&mut self);
}

/// A single delivered-event record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Delivery time.
    pub time: SimTime,
    /// Sequence number assigned by the event queue.
    pub seq: u64,
    /// Sender entity.
    pub src: EntityId,
    /// Receiver entity.
    pub dst: EntityId,
    /// Message or timer.
    pub kind: EventKind,
    /// Short human-readable description of the payload (produced by the
    /// model's `Debug` impl, truncated).
    pub label: String,
}

/// Receives trace records while the simulation runs.
pub trait TraceSink {
    /// Called once per delivered event.
    fn record(&mut self, record: TraceRecord);

    /// Receives a completed causal span.  Default: ignored, so event-only
    /// sinks need not care about spans.
    fn span(&mut self, record: SpanRecord) {
        let _ = record;
    }

    /// Receives one endpoint of a cross-entity flow.  Default: ignored.
    fn flow(&mut self, record: FlowRecord) {
        let _ = record;
    }
}

/// Discards all records (the default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTrace;

impl TraceSink for NullTrace {
    fn record(&mut self, _record: TraceRecord) {}
}

/// Stores all records in memory for later inspection.
#[derive(Debug, Default)]
pub struct VecTrace {
    records: Vec<TraceRecord>,
}

impl VecTrace {
    /// Creates an empty in-memory trace.
    #[must_use]
    pub fn new() -> Self {
        VecTrace { records: Vec::new() }
    }

    /// The records captured so far.
    #[must_use]
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consumes the trace and returns the records.
    #[must_use]
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }
}

impl TraceSink for VecTrace {
    fn record(&mut self, record: TraceRecord) {
        self.records.push(record);
    }
}

/// Truncates a debug label to a bounded length so traces of large payloads
/// (whole jobs) stay readable.
#[must_use]
pub fn truncate_label(mut label: String, max_len: usize) -> String {
    if label.len() > max_len {
        // Avoid splitting a UTF-8 code point.
        let mut cut = max_len;
        while !label.is_char_boundary(cut) {
            cut -= 1;
        }
        label.truncate(cut);
        label.push('…');
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: f64) -> TraceRecord {
        TraceRecord {
            time: SimTime::new(t),
            seq: 0,
            src: EntityId::new(0),
            dst: EntityId::new(1),
            kind: EventKind::Message,
            label: "x".into(),
        }
    }

    #[test]
    fn vec_trace_collects() {
        let mut t = VecTrace::new();
        t.record(rec(1.0));
        t.record(rec(2.0));
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.into_records().len(), 2);
    }

    #[test]
    fn null_trace_is_silent() {
        let mut t = NullTrace;
        t.record(rec(1.0)); // must not panic, does nothing
    }

    #[test]
    fn span_and_flow_default_to_no_ops() {
        // Event-only sinks compile and run unchanged against the span-aware
        // trait: the default methods swallow spans and flows.
        let mut t = VecTrace::new();
        t.span(SpanRecord {
            gfa: 0,
            track: SpanTrack::Lifecycle,
            name: "job",
            start: SimTime::new(1.0),
            end: SimTime::new(2.0),
            detail: String::new(),
        });
        t.flow(FlowRecord {
            id: 7,
            gfa: 0,
            track: SpanTrack::Negotiation,
            time: SimTime::new(1.5),
            start: true,
        });
        assert!(t.records().is_empty());
        assert_eq!(SpanTrack::Execution.tid(), 3);
        assert_eq!(SpanTrack::Directory.label(), "directory");
    }

    #[test]
    fn truncation_respects_char_boundaries() {
        let s = "αβγδεζηθ".to_string(); // 2 bytes per char
        let out = truncate_label(s, 5);
        assert!(out.ends_with('…'));
        assert!(out.chars().count() <= 4);
        let short = truncate_label("ab".into(), 5);
        assert_eq!(short, "ab");
    }
}
