//! Optional event tracing.
//!
//! A [`TraceSink`] receives one [`TraceRecord`] per delivered event.  The
//! default simulation uses [`NullTrace`] (zero overhead); tests and debugging
//! sessions can install [`VecTrace`] or a custom sink to inspect the exact
//! event ordering of a run.

use crate::entity::EntityId;
use crate::event::EventKind;
use crate::time::SimTime;

/// A single delivered-event record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Delivery time.
    pub time: SimTime,
    /// Sequence number assigned by the event queue.
    pub seq: u64,
    /// Sender entity.
    pub src: EntityId,
    /// Receiver entity.
    pub dst: EntityId,
    /// Message or timer.
    pub kind: EventKind,
    /// Short human-readable description of the payload (produced by the
    /// model's `Debug` impl, truncated).
    pub label: String,
}

/// Receives trace records while the simulation runs.
pub trait TraceSink {
    /// Called once per delivered event.
    fn record(&mut self, record: TraceRecord);
}

/// Discards all records (the default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTrace;

impl TraceSink for NullTrace {
    fn record(&mut self, _record: TraceRecord) {}
}

/// Stores all records in memory for later inspection.
#[derive(Debug, Default)]
pub struct VecTrace {
    records: Vec<TraceRecord>,
}

impl VecTrace {
    /// Creates an empty in-memory trace.
    #[must_use]
    pub fn new() -> Self {
        VecTrace { records: Vec::new() }
    }

    /// The records captured so far.
    #[must_use]
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consumes the trace and returns the records.
    #[must_use]
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }
}

impl TraceSink for VecTrace {
    fn record(&mut self, record: TraceRecord) {
        self.records.push(record);
    }
}

/// Truncates a debug label to a bounded length so traces of large payloads
/// (whole jobs) stay readable.
#[must_use]
pub fn truncate_label(mut label: String, max_len: usize) -> String {
    if label.len() > max_len {
        // Avoid splitting a UTF-8 code point.
        let mut cut = max_len;
        while !label.is_char_boundary(cut) {
            cut -= 1;
        }
        label.truncate(cut);
        label.push('…');
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: f64) -> TraceRecord {
        TraceRecord {
            time: SimTime::new(t),
            seq: 0,
            src: EntityId::new(0),
            dst: EntityId::new(1),
            kind: EventKind::Message,
            label: "x".into(),
        }
    }

    #[test]
    fn vec_trace_collects() {
        let mut t = VecTrace::new();
        t.record(rec(1.0));
        t.record(rec(2.0));
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.into_records().len(), 2);
    }

    #[test]
    fn null_trace_is_silent() {
        let mut t = NullTrace;
        t.record(rec(1.0)); // must not panic, does nothing
    }

    #[test]
    fn truncation_respects_char_boundaries() {
        let s = "αβγδεζηθ".to_string(); // 2 bytes per char
        let out = truncate_label(s, 5);
        assert!(out.ends_with('…'));
        assert!(out.chars().count() <= 4);
        let short = truncate_label("ab".into(), 5);
        assert_eq!(short, "ab");
    }
}
