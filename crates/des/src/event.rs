//! Events exchanged between entities.

use crate::entity::EntityId;
use crate::time::SimTime;

/// Classification of an event, used mainly for tracing and statistics.
///
/// The engine itself treats all events identically; the distinction matters
/// to consumers (e.g. the federation message accounting distinguishes
/// self-timers from genuine inter-entity messages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A message from one entity to another (possibly itself) that models a
    /// real network message or an internal hand-off.
    Message,
    /// A timer the entity scheduled on itself (e.g. "wake me up when the job
    /// I started finishes").  Timers never model network traffic.
    Timer,
}

/// A timestamped event delivered to a destination entity.
///
/// Events are generic over the payload type `M`, which each simulation model
/// defines (for the Grid-Federation model this is `FedMessage`).
#[derive(Debug, Clone)]
pub struct Event<M> {
    /// Delivery time.
    pub time: SimTime,
    /// Monotonically increasing sequence number assigned at scheduling time.
    /// Guarantees deterministic FIFO ordering among simultaneous events.
    pub seq: u64,
    /// Entity that scheduled the event.
    pub src: EntityId,
    /// Entity the event is delivered to.
    pub dst: EntityId,
    /// Message or timer classification.
    pub kind: EventKind,
    /// Model-specific payload.
    pub payload: M,
}

impl<M> Event<M> {
    /// Returns `true` if this event is a self-scheduled timer.
    #[must_use]
    pub fn is_timer(&self) -> bool {
        self.kind == EventKind::Timer
    }

    /// Returns `true` if this event models a message between two *different*
    /// entities.
    #[must_use]
    pub fn is_remote_message(&self) -> bool {
        self.kind == EventKind::Message && self.src != self.dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, src: usize, dst: usize) -> Event<u32> {
        Event {
            time: SimTime::new(1.0),
            seq: 0,
            src: EntityId::new(src),
            dst: EntityId::new(dst),
            kind,
            payload: 7,
        }
    }

    #[test]
    fn timer_classification() {
        assert!(ev(EventKind::Timer, 0, 0).is_timer());
        assert!(!ev(EventKind::Message, 0, 0).is_timer());
    }

    #[test]
    fn remote_message_classification() {
        assert!(ev(EventKind::Message, 0, 1).is_remote_message());
        assert!(!ev(EventKind::Message, 2, 2).is_remote_message());
        assert!(!ev(EventKind::Timer, 0, 1).is_remote_message());
    }
}
