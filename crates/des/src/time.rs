//! Simulation time.
//!
//! Time is represented as `f64` seconds wrapped in a [`SimTime`] newtype so
//! that it implements a **total order** (NaN values are rejected at
//! construction) and can be stored inside the binary-heap event queue.
//! The unit matches the paper: *simulation seconds* ("Sim Units").

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in seconds since the start of the simulation.
///
/// `SimTime` is a thin wrapper around `f64` that guarantees the value is
/// finite and non-negative, which in turn lets it implement [`Ord`].
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// One simulated hour, convenient for workload construction.
    pub const HOUR: SimTime = SimTime(3_600.0);

    /// One simulated day (86 400 s).
    pub const DAY: SimTime = SimTime(86_400.0);

    /// Creates a new `SimTime` from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN, infinite or negative — such values would
    /// corrupt the event queue ordering.
    #[must_use]
    pub fn new(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// Creates a `SimTime` from whole seconds.
    #[must_use]
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs as f64)
    }

    /// Returns the raw number of seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the time advanced by `delay` seconds.
    ///
    /// # Panics
    /// Panics if `delay` is negative or not finite.
    #[must_use]
    pub fn after(self, delay: f64) -> Self {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "delay must be finite and non-negative, got {delay}"
        );
        SimTime(self.0 + delay)
    }

    /// Saturating subtraction: `max(self - other, 0)`.
    #[must_use]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }

    /// Returns the larger of the two times.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of the two times.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Construction guarantees the value is never NaN, so partial_cmp
        // cannot fail.
        self.0
            .partial_cmp(&other.0)
            .expect("SimTime is never NaN by construction")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl From<f64> for SimTime {
    fn from(v: f64) -> Self {
        SimTime::new(v)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime::new(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::new(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: f64) -> SimTime {
        SimTime::new(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::new(12.5);
        assert_eq!(t.as_secs(), 12.5);
        assert_eq!(SimTime::from_secs(3).as_secs(), 3.0);
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
        assert_eq!(SimTime::DAY.as_secs(), 86_400.0);
        assert_eq!(SimTime::HOUR.as_secs(), 3_600.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_panics() {
        let _ = SimTime::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_time_panics() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::new(10.0);
        let b = SimTime::new(4.0);
        assert_eq!((a + b).as_secs(), 14.0);
        assert_eq!((a - b).as_secs(), 6.0);
        assert_eq!((a * 2.0).as_secs(), 20.0);
        assert_eq!((a / 2.0).as_secs(), 5.0);
        assert_eq!(a.after(5.0).as_secs(), 15.0);
        assert_eq!(b.saturating_sub(a).as_secs(), 0.0);
        assert_eq!(a.saturating_sub(b).as_secs(), 6.0);
    }

    #[test]
    #[should_panic]
    fn subtraction_below_zero_panics() {
        let _ = SimTime::new(1.0) - SimTime::new(2.0);
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut t = SimTime::new(5.0);
        t += SimTime::new(2.0);
        assert_eq!(t.as_secs(), 7.0);
        t -= SimTime::new(3.0);
        assert_eq!(t.as_secs(), 4.0);
    }

    #[test]
    fn display_and_debug() {
        let t = SimTime::new(1.23456);
        assert_eq!(format!("{t}"), "1.235");
        assert_eq!(format!("{t:?}"), "1.235s");
    }
}
