//! Deterministic random number streams.
//!
//! Every simulation owns a master seed from which independent, reproducible
//! sub-streams are derived (one per entity, one per workload generator, …).
//! Sub-streams are derived with SplitMix64 so that adding an entity never
//! perturbs the random numbers observed by existing entities — this keeps
//! experiment sweeps comparable across configurations.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A named, reproducible random stream.
///
/// Thin wrapper around [`StdRng`] that records the seed it was created from,
/// which is handy when persisting experiment provenance.
pub struct SimRng {
    seed: u64,
    inner: StdRng,
}

impl SimRng {
    /// Creates a stream directly from a 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent sub-stream identified by `stream_id`.
    ///
    /// The derivation is `splitmix64(master ^ golden * (stream_id + 1))`,
    /// giving well-separated seeds even for consecutive ids.
    #[must_use]
    pub fn derive(master_seed: u64, stream_id: u64) -> Self {
        let seed = splitmix64(
            master_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream_id.wrapping_add(1)),
        );
        SimRng::from_seed(seed)
    }

    /// The seed this stream was created from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Samples a uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Samples a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_range requires lo <= hi ({lo} > {hi})");
        if lo == hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Samples a uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn uniform_int(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_int requires lo <= hi ({lo} > {hi})");
        self.inner.gen_range(lo..=hi)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.uniform() < p
    }

    /// Exponentially distributed sample with the given `mean` (> 0).
    ///
    /// # Panics
    /// Panics if `mean` is not strictly positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be > 0, got {mean}");
        let u: f64 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Chooses an index in `[0, n)` uniformly at random.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn choose_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot choose from an empty range");
        self.inner.gen_range(0..n)
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// SplitMix64 step, used for seed derivation.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_given_same_seed() {
        let mut a = SimRng::from_seed(123);
        let mut b = SimRng::from_seed(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_are_independent_of_each_other() {
        let mut s0 = SimRng::derive(7, 0);
        let mut s1 = SimRng::derive(7, 1);
        let a: Vec<u64> = (0..16).map(|_| s0.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| s1.next_u64()).collect();
        assert_ne!(a, b);
        // Re-deriving stream 0 replays exactly the same sequence.
        let mut s0_again = SimRng::derive(7, 0);
        let a2: Vec<u64> = (0..16).map(|_| s0_again.next_u64()).collect();
        assert_eq!(a, a2);
    }

    /// Regression test for the determinism contract in the module docs: two
    /// streams built from the same seed replay bit-identical sequences
    /// across every sampling method, not just `next_u64`.
    #[test]
    fn from_seed_streams_are_bitwise_identical() {
        let mut a = SimRng::from_seed(0xDEAD_BEEF);
        let mut b = SimRng::from_seed(0xDEAD_BEEF);
        for _ in 0..256 {
            assert_eq!(a.next_u32(), b.next_u32());
            assert_eq!(a.next_u64(), b.next_u64());
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
            assert_eq!(
                a.uniform_range(1.5, 9.5).to_bits(),
                b.uniform_range(1.5, 9.5).to_bits()
            );
            assert_eq!(a.uniform_int(3, 1_000), b.uniform_int(3, 1_000));
            assert_eq!(a.bernoulli(0.37), b.bernoulli(0.37));
            assert_eq!(a.exponential(4.0).to_bits(), b.exponential(4.0).to_bits());
            assert_eq!(a.choose_index(17), b.choose_index(17));
        }
    }

    /// Regression test for the second half of the contract: sub-stream
    /// derivation is a pure function of `(master_seed, stream_id)`, so
    /// *adding an entity never perturbs existing entities* — deriving more
    /// streams, in any order, must not change what earlier streams observe.
    #[test]
    fn substream_derivation_is_order_independent() {
        let master = 0xFEED_F00D_0123_4567;
        let draw = |rng: &mut SimRng| -> Vec<u64> { (0..64).map(|_| rng.next_u64()).collect() };

        // Baseline: streams 0..3 derived in ascending order, nothing else.
        let baseline: Vec<Vec<u64>> = (0..3)
            .map(|id| draw(&mut SimRng::derive(master, id)))
            .collect();

        // Simulate "adding entities": derive and consume five extra streams
        // first, then re-derive 0..3 in *descending* order.
        for id in (3..8).rev() {
            let mut extra = SimRng::derive(master, id);
            let _ = draw(&mut extra);
        }
        let mut replay: Vec<Vec<u64>> = (0..3)
            .rev()
            .map(|id| draw(&mut SimRng::derive(master, id)))
            .collect();
        replay.reverse();

        assert_eq!(
            baseline, replay,
            "existing sub-streams were perturbed by deriving additional streams"
        );
        // Seeds are recorded per derived stream and stable, too.
        assert_eq!(
            SimRng::derive(master, 2).seed(),
            SimRng::derive(master, 2).seed()
        );
    }

    #[test]
    fn uniform_range_bounds() {
        let mut r = SimRng::from_seed(1);
        for _ in 0..1000 {
            let v = r.uniform_range(2.0, 5.0);
            assert!((2.0..5.0).contains(&v));
        }
        assert_eq!(r.uniform_range(3.0, 3.0), 3.0);
    }

    #[test]
    fn uniform_int_bounds() {
        let mut r = SimRng::from_seed(2);
        for _ in 0..1000 {
            let v = r.uniform_int(3, 9);
            assert!((3..=9).contains(&v));
        }
        assert_eq!(r.uniform_int(4, 4), 4);
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut r = SimRng::from_seed(3);
        let n = 50_000;
        let mean_target = 10.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean_target)).sum();
        let mean = sum / n as f64;
        assert!((mean - mean_target).abs() < 0.5, "sample mean {mean}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = SimRng::from_seed(4);
        assert!(!(0..100).any(|_| r.bernoulli(0.0)));
        assert!((0..100).all(|_| r.bernoulli(1.0)));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!((0..100).all(|_| r.bernoulli(2.0)));
    }

    #[test]
    fn choose_index_in_range() {
        let mut r = SimRng::from_seed(5);
        for _ in 0..100 {
            assert!(r.choose_index(7) < 7);
        }
    }

    #[test]
    fn seed_is_recorded() {
        assert_eq!(SimRng::from_seed(99).seed(), 99);
    }

    #[test]
    fn splitmix_is_not_identity() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
