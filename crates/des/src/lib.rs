//! # grid-des — deterministic discrete-event simulation engine
//!
//! This crate is the simulation substrate of the Grid-Federation reproduction.
//! The original paper evaluated its super-scheduling system inside the Java
//! [GridSim] toolkit; `grid-des` provides the equivalent facilities in Rust:
//!
//! * a global simulation clock measured in *simulation seconds* ([`SimTime`]),
//! * a priority event queue with **deterministic** tie-breaking
//!   ([`queue::EventQueue`]),
//! * addressable [`Entity`] objects (GFAs, clusters, user populations, …) that
//!   exchange timestamped messages through a [`Context`] handle,
//! * per-simulation seeded random number streams so every run is exactly
//!   reproducible,
//! * lightweight engine statistics ([`stats::SimStats`]) and an optional event
//!   trace for debugging.
//!
//! The engine is single-threaded by design: reproducing the paper's figures
//! requires bitwise-identical event ordering across runs.  Parallelism in this
//! workspace happens *across* simulation runs (parameter sweeps in
//! `grid-experiments` fan out one run per thread), which follows the usual
//! HPC guidance of parallelising at the outermost independent level.
//!
//! ## Quick example
//!
//! ```
//! use grid_des::{Simulation, Entity, Context, Event, EntityId, SimTime};
//!
//! #[derive(Debug, Clone, PartialEq)]
//! enum Msg { Ping(u32), Pong(u32) }
//!
//! struct Pinger { peer: EntityId, received: u32 }
//! struct Ponger;
//!
//! impl Entity<Msg> for Pinger {
//!     fn name(&self) -> &str { "pinger" }
//!     fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
//!         ctx.send(self.peer, 1.0, Msg::Ping(0));
//!     }
//!     fn on_event(&mut self, ev: Event<Msg>, ctx: &mut Context<'_, Msg>) {
//!         if let Msg::Pong(n) = ev.payload {
//!             self.received = n;
//!             if n < 3 { ctx.send(self.peer, 1.0, Msg::Ping(n)); }
//!         }
//!     }
//! }
//! impl Entity<Msg> for Ponger {
//!     fn name(&self) -> &str { "ponger" }
//!     fn on_event(&mut self, ev: Event<Msg>, ctx: &mut Context<'_, Msg>) {
//!         if let Msg::Ping(n) = ev.payload {
//!             ctx.send(ev.src, 0.5, Msg::Pong(n + 1));
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(42);
//! let ponger = sim.add_entity(Box::new(Ponger));
//! let pinger = sim.add_entity(Box::new(Pinger { peer: ponger, received: 0 }));
//! sim.run();
//! assert!(sim.now() > SimTime::ZERO);
//! assert_eq!(sim.stats().events_delivered, 6);
//! let _ = pinger;
//! ```
//!
//! [GridSim]: https://doi.org/10.1002/cpe.710

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod entity;
pub mod event;
pub mod net;
pub mod queue;
pub mod rng;
pub mod simulation;
pub mod stats;
pub mod time;
pub mod trace;

pub use entity::{Context, Entity, EntityId};
pub use event::{Event, EventKind};
pub use net::{DedupWindow, Jitter, LinkFaults, NetworkFaultConfig, TransmissionPlan};
pub use queue::{BinaryHeapEventQueue, EventQueue};
pub use rng::SimRng;
pub use simulation::{RunOutcome, Simulation};
pub use stats::SimStats;
pub use time::SimTime;
pub use trace::{EventProfiler, FlowRecord, SpanRecord, SpanTrack, TraceRecord, TraceSink};
