//! Entities and the context handle they use to interact with the engine.

use std::fmt;

use crate::event::{Event, EventKind};
use crate::queue::EventQueue;
use crate::rng::SimRng;
use crate::time::SimTime;

/// Identifies an entity registered with a [`crate::Simulation`].
///
/// Ids are dense indices assigned in registration order, which makes them
/// usable as `Vec` indices in model code (e.g. "GFA *i* owns cluster *i*").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(usize);

impl EntityId {
    /// Creates an id from a raw index.  Normally only the engine does this.
    #[must_use]
    pub fn new(index: usize) -> Self {
        EntityId(index)
    }

    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// A simulated actor: a cluster, a GFA, a user population, a directory node…
///
/// Entities never hold references to one another; all interaction goes
/// through timestamped events scheduled via [`Context`].  This mirrors the
/// message-passing structure of the real distributed system and keeps the
/// model free of aliasing issues.
pub trait Entity<M> {
    /// Human-readable name used in traces and panics.
    fn name(&self) -> &str;

    /// Called once before the first event is delivered.  Entities typically
    /// schedule their initial timers or first job arrivals here.
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }

    /// Called for every event addressed to this entity.
    fn on_event(&mut self, event: Event<M>, ctx: &mut Context<'_, M>);

    /// Called once after the simulation stops (horizon reached, queue empty
    /// or explicit stop).  Useful for flushing final metrics.
    fn on_finish(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }
}

/// Handle passed to entities, giving them access to the clock, the event
/// queue and a deterministic random stream.
pub struct Context<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) self_id: EntityId,
    pub(crate) queue: &'a mut EventQueue<M>,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) stop_requested: &'a mut bool,
}

impl<'a, M> Context<'a, M> {
    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the entity currently being invoked.
    #[must_use]
    pub fn self_id(&self) -> EntityId {
        self.self_id
    }

    /// The simulation-wide deterministic random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Sends a message to `dst`, delivered `delay` seconds from now.
    ///
    /// # Panics
    /// Panics if `delay` is negative or not finite.
    pub fn send(&mut self, dst: EntityId, delay: f64, payload: M) {
        self.schedule(dst, self.now.after(delay), EventKind::Message, payload);
    }

    /// Sends a message delivered at an absolute time `at` (must not be in the
    /// past).
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time.
    pub fn send_at(&mut self, dst: EntityId, at: SimTime, payload: M) {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past ({at} < {})",
            self.now
        );
        self.schedule(dst, at, EventKind::Message, payload);
    }

    /// Schedules a timer on the calling entity itself, firing after `delay`
    /// seconds.
    pub fn timer(&mut self, delay: f64, payload: M) {
        self.schedule(self.self_id, self.now.after(delay), EventKind::Timer, payload);
    }

    /// Schedules a timer on the calling entity at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time.
    pub fn timer_at(&mut self, at: SimTime, payload: M) {
        assert!(
            at >= self.now,
            "cannot schedule a timer in the past ({at} < {})",
            self.now
        );
        self.schedule(self.self_id, at, EventKind::Timer, payload);
    }

    /// Requests the simulation to stop after the current event completes.
    /// Pending events are discarded (and counted in
    /// [`crate::SimStats::events_dropped_at_stop`]).
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }

    fn schedule(&mut self, dst: EntityId, at: SimTime, kind: EventKind, payload: M) {
        self.queue.push(Event {
            time: at,
            seq: 0, // assigned by the queue
            src: self.self_id,
            dst,
            kind,
            payload,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_id_roundtrip_and_display() {
        let id = EntityId::new(5);
        assert_eq!(id.index(), 5);
        assert_eq!(format!("{id}"), "E5");
        assert!(EntityId::new(1) < EntityId::new(2));
    }

    #[test]
    fn context_schedules_messages_and_timers() {
        let mut queue: EventQueue<u32> = EventQueue::new();
        let mut rng = SimRng::from_seed(0);
        let mut stop = false;
        let mut ctx = Context {
            now: SimTime::new(10.0),
            self_id: EntityId::new(0),
            queue: &mut queue,
            rng: &mut rng,
            stop_requested: &mut stop,
        };
        assert_eq!(ctx.now(), SimTime::new(10.0));
        assert_eq!(ctx.self_id(), EntityId::new(0));
        ctx.send(EntityId::new(1), 5.0, 7);
        ctx.send_at(EntityId::new(2), SimTime::new(12.0), 8);
        ctx.timer(1.0, 9);
        ctx.timer_at(SimTime::new(30.0), 10);
        let _ = ctx.rng().uniform();
        ctx.stop();
        assert!(stop);
        assert_eq!(queue.len(), 4);
        // Events must come out ordered by time: timer(11.0), send_at(12.0),
        // send(15.0), timer_at(30.0).
        let order: Vec<(f64, u32, EventKind)> = std::iter::from_fn(|| queue.pop())
            .map(|e| (e.time.as_secs(), e.payload, e.kind))
            .collect();
        assert_eq!(
            order,
            vec![
                (11.0, 9, EventKind::Timer),
                (12.0, 8, EventKind::Message),
                (15.0, 7, EventKind::Message),
                (30.0, 10, EventKind::Timer),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut queue: EventQueue<u32> = EventQueue::new();
        let mut rng = SimRng::from_seed(0);
        let mut stop = false;
        let mut ctx = Context {
            now: SimTime::new(10.0),
            self_id: EntityId::new(0),
            queue: &mut queue,
            rng: &mut rng,
            stop_requested: &mut stop,
        };
        ctx.send_at(EntityId::new(1), SimTime::new(5.0), 1);
    }
}
