//! Property-based tests for the discrete-event engine invariants.

use grid_des::{Context, Entity, EntityId, Event, EventQueue, SimRng, SimTime, Simulation};
use proptest::prelude::*;

fn make_event(t: f64, payload: u32) -> Event<u32> {
    Event {
        time: SimTime::new(t),
        seq: 0,
        src: EntityId::new(0),
        dst: EntityId::new(0),
        kind: grid_des::EventKind::Message,
        payload,
    }
}

proptest! {
    /// The queue always pops events in non-decreasing time order, and events
    /// with identical timestamps come out in insertion (FIFO) order.
    #[test]
    fn queue_is_time_ordered_and_stable(times in proptest::collection::vec(0u32..50, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(make_event(f64::from(*t), i as u32));
        }
        let mut last_time = SimTime::ZERO;
        let mut last_payload_at_time: Option<(SimTime, u32)> = None;
        while let Some(ev) = q.pop() {
            prop_assert!(ev.time >= last_time);
            if let Some((t, p)) = last_payload_at_time {
                if t == ev.time {
                    // same timestamp: insertion order == payload order here
                    prop_assert!(ev.payload > p);
                }
            }
            last_payload_at_time = Some((ev.time, ev.payload));
            last_time = ev.time;
        }
        prop_assert!(q.is_empty());
    }

    /// SimTime ordering is consistent with the underlying f64 ordering.
    #[test]
    fn simtime_order_matches_f64(a in 0.0f64..1e9, b in 0.0f64..1e9) {
        let ta = SimTime::new(a);
        let tb = SimTime::new(b);
        prop_assert_eq!(ta < tb, a < b);
        prop_assert_eq!(ta.max(tb).as_secs(), a.max(b));
        prop_assert_eq!(ta.min(tb).as_secs(), a.min(b));
    }

    /// Derived RNG streams replay identically for the same (seed, id) pair.
    #[test]
    fn rng_streams_replay(seed in any::<u64>(), stream in 0u64..64) {
        let mut a = SimRng::derive(seed, stream);
        let mut b = SimRng::derive(seed, stream);
        for _ in 0..32 {
            prop_assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }
}

/// An entity that schedules a pseudo-random workload of self-timers and
/// checks that every delivery time it observes is monotonically
/// non-decreasing.
struct MonotoneChecker {
    to_schedule: Vec<f64>,
    last_seen: f64,
    violations: u32,
}

impl Entity<u32> for MonotoneChecker {
    fn name(&self) -> &str {
        "monotone-checker"
    }
    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        for (i, d) in self.to_schedule.iter().enumerate() {
            ctx.timer(*d, i as u32);
        }
    }
    fn on_event(&mut self, event: Event<u32>, ctx: &mut Context<'_, u32>) {
        let now = ctx.now().as_secs();
        if now + 1e-12 < self.last_seen {
            self.violations += 1;
        }
        self.last_seen = now;
        // Occasionally fan out more work to exercise interleaving.
        if event.payload % 7 == 0 && now < 1_000.0 {
            ctx.timer(3.0, event.payload + 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// The simulation clock never moves backwards regardless of how timers
    /// are scheduled.
    #[test]
    fn clock_never_goes_backwards(delays in proptest::collection::vec(0.0f64..500.0, 1..64), seed in any::<u64>()) {
        let mut sim = Simulation::new(seed);
        sim.add_entity(Box::new(MonotoneChecker {
            to_schedule: delays,
            last_seen: 0.0,
            violations: 0,
        }));
        sim.set_max_events(10_000);
        sim.run();
        // The checker records violations internally; the engine also
        // debug-asserts, but in release proptest runs we re-verify via stats:
        prop_assert!(sim.stats().events_delivered > 0);
        prop_assert!(sim.now().as_secs() >= 0.0);
    }
}
