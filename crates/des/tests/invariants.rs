//! Proves the engine's time-monotonicity invariant fires (the `invariants`
//! feature): a corrupting test double rewinds a pending event into the
//! simulated past and the run loop must panic instead of delivering it.
#![cfg(feature = "invariants")]

use grid_des::{Context, Entity, Event, EventQueue, SimTime, Simulation};

/// An entity that schedules a few future timers and otherwise does nothing.
struct Ticker;

impl Entity<u32> for Ticker {
    fn name(&self) -> &str {
        "ticker"
    }

    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        ctx.timer_at(SimTime::new(10.0), 1);
        ctx.timer_at(SimTime::new(20.0), 2);
        ctx.timer_at(SimTime::new(30.0), 3);
    }

    fn on_event(&mut self, _event: Event<u32>, _ctx: &mut Context<'_, u32>) {}
}

#[test]
fn intact_run_delivers_in_order() {
    let mut sim: Simulation<u32> = Simulation::new(7);
    sim.add_entity(Box::new(Ticker));
    sim.run();
    assert_eq!(sim.now(), SimTime::new(30.0));
    assert_eq!(sim.stats().events_delivered, 3);
}

#[test]
#[should_panic(expected = "event from the past")]
fn reordered_event_trips_the_monotonicity_assert() {
    let mut sim: Simulation<u32> = Simulation::new(7);
    sim.add_entity(Box::new(Ticker));
    // Deliver the t=10 event, so the clock sits at 10 with t=20/t=30
    // pending...
    sim.run_to(SimTime::new(15.0));
    assert_eq!(sim.now(), SimTime::new(15.0));
    // ...then corrupt the earliest pending event back to t=5 and keep
    // running: the engine must refuse to run its clock backwards.
    assert!(sim.corrupt_earliest_event_time(SimTime::new(5.0)));
    sim.run();
}

#[test]
fn corrupting_an_empty_queue_reports_false() {
    let mut queue: EventQueue<u32> = EventQueue::new();
    assert!(!queue.corrupt_earliest_time(SimTime::new(1.0)));
}
