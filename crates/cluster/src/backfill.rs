//! EASY-backfilling local scheduler.
//!
//! The paper's evaluation uses plain space-shared FCFS (that is what GridSim's
//! `SpaceShared` policy does), but the conclusion notes that smarter local
//! policies would change the admission-control picture.  This module provides
//! the classic EASY backfilling variant — queued jobs may jump ahead of the
//! FCFS head as long as they do not delay the head's earliest possible start
//! — so the ablation benchmarks can quantify exactly how much the choice of
//! LRMS policy matters for the federation-level results.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use grid_workload::JobId;

use crate::estimate::{replay_estimate, FinishEvent, QuoteCache};
use crate::lrms::{ClusterJob, LocalScheduler, StartedJob};

/// EASY-backfilling space-shared scheduler.
#[derive(Debug, Clone)]
pub struct EasyBackfilling {
    total: u32,
    busy: u32,
    running: Vec<StartedJob>,
    queue: VecDeque<ClusterJob>,
    busy_acc: f64,
    last_change: f64,
    completed_jobs: u64,
    /// Bumped on every state change; stamps the quote cache.
    epoch: u64,
    quote_cache: RefCell<QuoteCache>,
}

impl EasyBackfilling {
    /// Creates a scheduler managing `processors` PEs.
    ///
    /// # Panics
    /// Panics if `processors == 0`.
    #[must_use]
    pub fn new(processors: u32) -> Self {
        assert!(processors > 0, "a cluster needs at least one processor");
        EasyBackfilling {
            total: processors,
            busy: 0,
            running: Vec::new(),
            queue: VecDeque::new(),
            busy_acc: 0.0,
            last_change: 0.0,
            completed_jobs: 0,
            epoch: 0,
            quote_cache: RefCell::new(QuoteCache::default()),
        }
    }

    /// Number of jobs that ran to completion on this cluster.
    #[must_use]
    pub fn completed_jobs(&self) -> u64 {
        self.completed_jobs
    }

    /// The conservative FCFS full-replay estimator, retained as the
    /// differential oracle for the property tests and the `bench_perf`
    /// speedup baseline.
    #[must_use]
    pub fn estimate_completion_replay(&self, processors: u32, service_time: f64, now: f64) -> f64 {
        replay_estimate(
            self.total,
            self.busy,
            &self.running,
            &self.queue,
            processors,
            service_time,
            now,
        )
    }

    fn advance_accounting(&mut self, now: f64) {
        assert!(
            now + 1e-9 >= self.last_change,
            "time moved backwards: {now} < {}",
            self.last_change
        );
        let now = now.max(self.last_change);
        self.busy_acc += f64::from(self.busy) * (now - self.last_change);
        self.last_change = now;
    }

    fn start_job(&mut self, job: ClusterJob, now: f64) -> StartedJob {
        debug_assert!(self.busy + job.processors <= self.total);
        self.busy += job.processors;
        let started = StartedJob {
            id: job.id,
            start: now,
            finish: now + job.service_time,
            processors: job.processors,
        };
        self.running.push(started);
        started
    }

    /// Earliest time at which `procs` processors will be free, and the number
    /// of processors free at that time, considering only running jobs.
    fn shadow(&self, procs: u32, now: f64) -> (f64, u32) {
        let mut heap: BinaryHeap<Reverse<FinishEvent>> = self
            .running
            .iter()
            .map(|r| {
                Reverse(FinishEvent {
                    time: r.finish,
                    processors: r.processors,
                })
            })
            .collect();
        let mut free = self.total - self.busy;
        let mut t = now;
        while free < procs {
            let Reverse(ev) = heap.pop().expect("head job fits on the machine");
            if ev.time > t {
                t = ev.time;
            }
            free += ev.processors;
        }
        (t, free)
    }

    /// Starts queued jobs: the FCFS head whenever it fits, and backfill
    /// candidates that neither exceed the currently free processors nor delay
    /// the head's reservation.
    fn schedule_queue(&mut self, now: f64, started: &mut Vec<StartedJob>) {
        // Start the head (and successive heads) while they fit outright.
        while let Some(head) = self.queue.front() {
            if self.total - self.busy >= head.processors {
                let job = self.queue.pop_front().expect("front exists");
                let s = self.start_job(job, now);
                started.push(s);
            } else {
                break;
            }
        }
        // Backfill behind a blocked head.
        if let Some(head) = self.queue.front().copied() {
            let (shadow_time, shadow_free) = self.shadow(head.processors, now);
            // Processors not needed by the head even at its reservation time.
            let extra = shadow_free - head.processors;
            let mut idx = 1;
            while idx < self.queue.len() {
                let candidate = self.queue[idx];
                let free_now = self.total - self.busy;
                let fits_now = candidate.processors <= free_now;
                let ends_before_shadow = now + candidate.service_time <= shadow_time + 1e-9;
                let within_extra = candidate.processors <= extra;
                if fits_now && (ends_before_shadow || within_extra) {
                    let job = self.queue.remove(idx).expect("index in bounds");
                    let s = self.start_job(job, now);
                    started.push(s);
                    // Backfilled jobs consume `extra` capacity if they outlive
                    // the shadow time.
                    // (Recomputing the shadow keeps the approximation honest.)
                    continue;
                }
                idx += 1;
            }
        }
    }
}

impl LocalScheduler for EasyBackfilling {
    fn total_processors(&self) -> u32 {
        self.total
    }
    fn busy_processors(&self) -> u32 {
        self.busy
    }
    fn running_count(&self) -> usize {
        self.running.len()
    }
    fn queued_count(&self) -> usize {
        self.queue.len()
    }

    fn submit_into(&mut self, job: ClusterJob, now: f64, started: &mut Vec<StartedJob>) {
        assert!(
            job.processors >= 1 && job.processors <= self.total,
            "job {} requests {} processors on a {}-processor cluster",
            job.id,
            job.processors,
            self.total
        );
        assert!(
            job.service_time >= 0.0 && job.service_time.is_finite(),
            "service time must be finite and non-negative"
        );
        self.advance_accounting(now);
        self.epoch += 1;
        self.queue.push_back(job);
        self.schedule_queue(now, started);
    }

    fn on_finished_into(&mut self, id: JobId, now: f64, started: &mut Vec<StartedJob>) {
        self.advance_accounting(now);
        self.epoch += 1;
        let pos = self
            .running
            .iter()
            .position(|r| r.id == id)
            .unwrap_or_else(|| panic!("job {id} is not running on this cluster"));
        let finished = self.running.swap_remove(pos);
        self.busy -= finished.processors;
        self.completed_jobs += 1;
        self.schedule_queue(now, started);
    }

    fn estimate_completion(&self, processors: u32, service_time: f64, now: f64) -> f64 {
        // Conservative estimate: assume pure FCFS behaviour for the estimate,
        // which is an upper bound on the backfilling schedule and therefore
        // safe for admission control.
        assert!(processors >= 1, "estimate needs at least one processor");
        if processors > self.total {
            return f64::INFINITY;
        }
        self.quote_cache.borrow_mut().estimate(
            self.total,
            self.busy,
            &self.running,
            &self.queue,
            self.epoch,
            processors,
            service_time,
            now,
        )
    }

    fn busy_processor_seconds(&self, now: f64) -> f64 {
        let extra = f64::from(self.busy) * (now - self.last_change).max(0.0);
        self.busy_acc + extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jid(seq: usize) -> JobId {
        JobId { origin: 0, seq }
    }
    fn job(seq: usize, procs: u32, service: f64) -> ClusterJob {
        ClusterJob {
            id: jid(seq),
            processors: procs,
            service_time: service,
        }
    }

    #[test]
    fn backfills_short_jobs_around_a_blocked_head() {
        let mut s = EasyBackfilling::new(16);
        s.submit(job(0, 10, 100.0), 0.0); // running, 6 free
        s.submit(job(1, 12, 50.0), 0.0); // head: blocked until t=100
        // A short 4-proc job ends before the head's shadow time → backfilled.
        let started = s.submit(job(2, 4, 20.0), 0.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].id, jid(2));
        assert_eq!(started[0].start, 0.0);
        assert_eq!(s.running_count(), 2);
        assert_eq!(s.queued_count(), 1);
    }

    #[test]
    fn does_not_backfill_jobs_that_would_delay_the_head() {
        let mut s = EasyBackfilling::new(16);
        s.submit(job(0, 10, 100.0), 0.0); // 6 free
        s.submit(job(1, 12, 50.0), 0.0); // head, shadow time = 100, extra = 16-12 = 4
        // 6-proc job running 500 s: fits now, but outlives the shadow and
        // needs more than the 4 extra processors → must NOT start.
        let started = s.submit(job(2, 6, 500.0), 0.0);
        assert!(started.is_empty());
        // A 4-proc long job fits within the head's leftover processors → OK.
        let started = s.submit(job(3, 4, 500.0), 0.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].id, jid(3));
    }

    #[test]
    fn same_workload_finishes_no_later_than_fcfs() {
        use crate::lrms::SpaceSharedFcfs;
        // A workload where backfilling clearly helps.
        let jobs = vec![
            job(0, 10, 100.0),
            job(1, 12, 50.0),
            job(2, 4, 20.0),
            job(3, 2, 10.0),
            job(4, 6, 30.0),
        ];
        fn drive<S: LocalScheduler>(s: &mut S, jobs: &[ClusterJob]) -> f64 {
            let mut started: Vec<StartedJob> = Vec::new();
            for j in jobs {
                started.extend(s.submit(*j, 0.0));
            }
            let mut makespan: f64 = 0.0;
            while let Some(next) = started
                .iter()
                .min_by(|a, b| a.finish.total_cmp(&b.finish))
                .copied()
            {
                started.retain(|x| x.id != next.id);
                started.extend(s.on_finished(next.id, next.finish));
                makespan = makespan.max(next.finish);
            }
            makespan
        }
        let mut fcfs = SpaceSharedFcfs::new(16);
        let mut easy = EasyBackfilling::new(16);
        let fcfs_makespan = drive(&mut fcfs, &jobs);
        let easy_makespan = drive(&mut easy, &jobs);
        assert!(easy_makespan <= fcfs_makespan + 1e-9);
        assert_eq!(fcfs.completed_jobs(), 5);
        assert_eq!(easy.completed_jobs(), 5);
    }

    #[test]
    fn estimator_is_conservative_upper_bound() {
        let mut s = EasyBackfilling::new(16);
        s.submit(job(0, 10, 100.0), 0.0);
        s.submit(job(1, 12, 50.0), 0.0);
        let est = s.estimate_completion(4, 20.0, 0.0);
        // The FCFS bound starts the 4-proc job only once the blocked head has
        // started (t = 100, leaving 4 processors free), so it finishes at 120.
        assert!((est - 120.0).abs() < 1e-9, "estimate {est}");
        // Reality (with backfilling) would finish it at t=20; the estimate
        // must never be smaller than reality, and it isn't.
        // The incremental profile agrees bit-for-bit with the replay oracle.
        assert_eq!(est.to_bits(), s.estimate_completion_replay(4, 20.0, 0.0).to_bits());
    }

    #[test]
    fn utilization_is_tracked_like_fcfs() {
        let mut s = EasyBackfilling::new(10);
        s.submit(job(0, 5, 100.0), 0.0);
        s.on_finished(jid(0), 100.0);
        assert!((s.utilization(100.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "requests 99 processors")]
    fn oversized_submission_panics() {
        let mut s = EasyBackfilling::new(16);
        s.submit(job(0, 99, 10.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processor_estimate_panics_like_fcfs() {
        let s = EasyBackfilling::new(16);
        let _ = s.estimate_completion(0, 10.0, 0.0);
    }
}
