//! Incremental admission-control estimation shared by the local schedulers.
//!
//! The GFA's DBC loop asks "when would this job finish if accepted now?"
//! (Eq. 2 / Algorithm 1) once per candidate per negotiation round, so a
//! loaded federation issues thousands of quotes between consecutive
//! scheduler state changes.  The original estimator replayed the entire
//! running set and queue into a fresh binary heap on *every* quote —
//! O((R+Q)·log(R+Q)) per call.
//!
//! This module replaces that with a persistent **availability profile**: one
//! replay per scheduler state change builds a sorted step function
//! `(time, cumulative free processors)` describing when capacity becomes
//! available once the current queue has been dispatched.  A quote for
//! `(processors, service_time)` is then a binary search over the steps —
//! O(log R) with zero allocation — and the profile is invalidated only when
//! the scheduler's epoch advances (a `submit`/`on_finished` mutated state).
//!
//! The original replay estimator is retained as [`replay_estimate`]: it is
//! the differential oracle the property tests compare against and the
//! baseline the `bench_perf` binary measures the speedup from.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use crate::lrms::{ClusterJob, StartedJob};

/// Finish event used by the completion-time estimators (a job releasing
/// `processors` PEs at `time`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FinishEvent {
    pub(crate) time: f64,
    pub(crate) processors: u32,
}

impl Eq for FinishEvent {}
impl PartialOrd for FinishEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FinishEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.processors.cmp(&other.processors))
    }
}

/// Epoch-stamped availability profile answering completion-time quotes.
///
/// The profile is exact for any query time `now` in `[base, valid_until]`;
/// outside that window (or when the scheduler's epoch advanced) it rebuilds
/// itself from the current state, reusing its buffers so the steady-state
/// quote path stays allocation-free.
#[derive(Debug, Clone, Default)]
pub(crate) struct QuoteCache {
    /// Scheduler epoch the profile was built at.
    epoch: u64,
    /// Query time the profile was built at.
    base: f64,
    /// Largest query time the profile answers exactly (the earliest running
    /// finish while jobs are queued; +inf when the queue is empty because
    /// thresholds are re-clamped against `now` on every quote).
    valid_until: f64,
    /// `(time, cumulative free processors)` steps: times non-decreasing,
    /// free strictly increasing up to the cluster's total.
    steps: Vec<(f64, u32)>,
    /// Scratch heap reused across rebuilds.
    scratch: BinaryHeap<Reverse<FinishEvent>>,
    built: bool,
}

impl QuoteCache {
    /// Answers a completion-time quote, rebuilding the profile first if the
    /// cached one cannot answer exactly at `now`.
    ///
    /// The caller must have rejected `processors > total` already.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn estimate(
        &mut self,
        total: u32,
        busy: u32,
        running: &[StartedJob],
        queue: &VecDeque<ClusterJob>,
        epoch: u64,
        processors: u32,
        service_time: f64,
        now: f64,
    ) -> f64 {
        debug_assert!(processors >= 1 && processors <= total);
        if !self.built || self.epoch != epoch || now < self.base || now > self.valid_until {
            self.rebuild(total, busy, running, queue, epoch, now);
        }
        self.threshold(processors).max(now) + service_time
    }

    /// One FCFS replay of the current state, recorded as availability steps.
    fn rebuild(
        &mut self,
        total: u32,
        busy: u32,
        running: &[StartedJob],
        queue: &VecDeque<ClusterJob>,
        epoch: u64,
        now: f64,
    ) {
        self.steps.clear();
        self.scratch.clear();
        let mut min_finish = f64::INFINITY;
        for r in running {
            min_finish = min_finish.min(r.finish);
            self.scratch.push(Reverse(FinishEvent {
                time: r.finish,
                processors: r.processors,
            }));
        }
        let mut free = total - busy;
        let mut t = now;
        for q in queue {
            while free < q.processors {
                // The LRMS admits only jobs that fit the cluster, so enough
                // finish events always remain to free the requested PEs.
                // fedlint: allow(hot-path-unwrap)
                let Reverse(ev) = self.scratch.pop().expect("not enough processors ever free");
                if ev.time > t {
                    t = ev.time;
                }
                free += ev.processors;
            }
            free -= q.processors;
            self.scratch.push(Reverse(FinishEvent {
                time: t + q.service_time,
                processors: q.processors,
            }));
        }
        // Base step: capacity left once the whole queue has been dispatched.
        self.steps.push((t, free));
        // Remaining finish events, in ascending order, grow the availability.
        while let Some(Reverse(ev)) = self.scratch.pop() {
            if ev.time > t {
                t = ev.time;
            }
            free += ev.processors;
            self.steps.push((t, free));
        }
        debug_assert_eq!(free, total, "all processors free once everything finished");
        self.epoch = epoch;
        self.base = now;
        self.built = true;
        // With a non-empty queue the replayed start times depend on `now`
        // only while no running job finishes in between; with an empty queue
        // every threshold is re-clamped against `now`, so the profile holds
        // for the rest of the epoch.
        self.valid_until = if queue.is_empty() {
            f64::INFINITY
        } else if min_finish > now {
            min_finish
        } else {
            now
        };
    }

    /// Earliest profile time at which `processors` PEs are simultaneously
    /// free (the hypothetical job's start, before clamping against `now`).
    fn threshold(&self, processors: u32) -> f64 {
        let idx = self.steps.partition_point(|&(_, f)| f < processors);
        debug_assert!(idx < self.steps.len(), "capacity check happens before the quote");
        self.steps[idx].0
    }
}

/// The original O((R+Q)·log(R+Q)) replay estimator, retained verbatim as the
/// differential oracle for the property tests and the baseline measured by
/// `bench_perf`.
pub(crate) fn replay_estimate(
    total: u32,
    busy: u32,
    running: &[StartedJob],
    queue: &VecDeque<ClusterJob>,
    processors: u32,
    service_time: f64,
    now: f64,
) -> f64 {
    if processors > total {
        return f64::INFINITY;
    }
    let mut heap: BinaryHeap<Reverse<FinishEvent>> = running
        .iter()
        .map(|r| {
            Reverse(FinishEvent {
                time: r.finish,
                processors: r.processors,
            })
        })
        .collect();
    let mut free = total - busy;
    let mut t = now;

    let mut simulate_start = |procs: u32, service: f64, free: &mut u32, t: &mut f64| -> f64 {
        while *free < procs {
            // Capacity is prechecked above, so the replay can always free
            // enough PEs.  fedlint: allow(hot-path-unwrap)
            let Reverse(ev) = heap.pop().expect("not enough processors ever free");
            if ev.time > *t {
                *t = ev.time;
            }
            *free += ev.processors;
        }
        let start = *t;
        *free -= procs;
        heap.push(Reverse(FinishEvent {
            time: start + service,
            processors: procs,
        }));
        start
    };

    for q in queue {
        let _ = simulate_start(q.processors, q.service_time, &mut free, &mut t);
    }
    let start = simulate_start(processors, service_time, &mut free, &mut t);
    start + service_time
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_workload::JobId;

    fn started(seq: usize, start: f64, finish: f64, procs: u32) -> StartedJob {
        StartedJob {
            id: JobId { origin: 0, seq },
            start,
            finish,
            processors: procs,
        }
    }

    fn queued(seq: usize, procs: u32, service: f64) -> ClusterJob {
        ClusterJob {
            id: JobId { origin: 0, seq },
            processors: procs,
            service_time: service,
        }
    }

    #[test]
    fn profile_matches_replay_on_a_loaded_machine() {
        let running = vec![started(0, 0.0, 100.0, 12), started(1, 0.0, 60.0, 2)];
        let queue: VecDeque<ClusterJob> =
            vec![queued(2, 8, 50.0), queued(3, 10, 30.0)].into_iter().collect();
        let mut cache = QuoteCache::default();
        for procs in 1..=16u32 {
            for service in [0.0, 40.0, 123.5] {
                let fast = cache.estimate(16, 14, &running, &queue, 1, procs, service, 10.0);
                let slow = replay_estimate(16, 14, &running, &queue, procs, service, 10.0);
                assert_eq!(fast.to_bits(), slow.to_bits(), "procs={procs} service={service}");
            }
        }
    }

    #[test]
    fn cache_survives_advancing_now_until_the_next_finish() {
        let running = vec![started(0, 0.0, 100.0, 12)];
        let queue: VecDeque<ClusterJob> = vec![queued(1, 8, 50.0)].into_iter().collect();
        let mut cache = QuoteCache::default();
        // Build at t=10, then quote at t=40 (< first finish at 100): the
        // cached profile must still agree with a fresh replay at t=40.
        let _ = cache.estimate(16, 12, &running, &queue, 7, 4, 5.0, 10.0);
        let fast = cache.estimate(16, 12, &running, &queue, 7, 16, 5.0, 40.0);
        let slow = replay_estimate(16, 12, &running, &queue, 16, 5.0, 40.0);
        assert_eq!(fast.to_bits(), slow.to_bits());
    }

    #[test]
    fn stale_epoch_forces_a_rebuild() {
        let mut running = vec![started(0, 0.0, 100.0, 12)];
        let queue = VecDeque::new();
        let mut cache = QuoteCache::default();
        let before = cache.estimate(16, 12, &running, &queue, 1, 8, 10.0, 0.0);
        assert_eq!(before, 110.0); // must wait for the 12-proc job
        running.clear();
        let after = cache.estimate(16, 0, &running, &queue, 2, 8, 10.0, 0.0);
        assert_eq!(after, 10.0); // fresh epoch: the machine is empty now
    }

    #[test]
    fn empty_machine_quotes_are_immediate() {
        let mut cache = QuoteCache::default();
        let queue = VecDeque::new();
        let est = cache.estimate(8, 0, &[], &queue, 0, 4, 100.0, 50.0);
        assert_eq!(est, 150.0);
        // Later `now`, same epoch: still exact without a rebuild.
        let est = cache.estimate(8, 0, &[], &queue, 0, 8, 1.0, 99.0);
        assert_eq!(est, 100.0);
    }
}
