//! The analytic cost model of the paper (Eq. 1–4) and the QoS fabrication
//! rules (Eq. 7–8).
//!
//! Everything in the federation — admission control, the OFC/OFT choice,
//! incentive accounting — is expressed in terms of two functions of a job
//! `J` and a candidate resource `R_m`:
//!
//! * `D(J, R_m)` — the execution (service) time on `R_m`,
//! * `B(J, R_m)` — the price charged by `R_m`'s owner for that execution.

use crate::resource::ResourceSpec;
use grid_workload::Job;

/// Total data transferred during the parallel execution of `job`,
/// `Γ(J, R_k) = α·γ_k` (Eq. 1).  `origin` must be the resource the job
/// originated at (the paper's `R_k`).
#[must_use]
pub fn transfer_volume(job: &Job, origin: &ResourceSpec) -> f64 {
    job.comm_overhead * origin.bandwidth
}

/// Execution time of `job` on `target`,
/// `D(J, R_m) = l / (µ_m · p) + α·γ_k / γ_m` (Eq. 2–3).
///
/// The communication term scales with the ratio of the origin's bandwidth to
/// the target's: moving a job from a fat-pipe cluster to a thin-pipe cluster
/// inflates its communication phase proportionally.
#[must_use]
pub fn completion_time(job: &Job, target: &ResourceSpec, origin: &ResourceSpec) -> f64 {
    job.compute_time(target.mips) + job.comm_overhead * origin.bandwidth / target.bandwidth
}

/// Cost of executing `job` on `target`, `B(J, R_m) = c_m · l / (µ_m · p)`
/// (Eq. 4).  Only compute time is charged, as in the paper.
#[must_use]
pub fn cost(job: &Job, target: &ResourceSpec) -> f64 {
    target.price * job.compute_time(target.mips)
}

/// Cost of executing `job` on `target` when the owner charges per 1000 MI of
/// executed work (`B = c_m · l / 1000`).
///
/// The paper defines both conventions ("the cluster owner charges c_i per
/// unit time or per unit of million instructions executed, e.g. per 1000
/// MI"); the magnitudes of its incentive and budget figures (≈10⁹ Grid
/// Dollars federation-wide, ≈10⁵ per job) match this per-work convention, so
/// the economy experiments default to it — see DESIGN.md.
#[must_use]
pub fn cost_per_kilo_mi(job: &Job, target: &ResourceSpec) -> f64 {
    target.price * job.length_mi / 1_000.0
}

/// Fabricates the QoS constraints the paper assigns to every trace job
/// (Eq. 7–8): a budget of twice the cost on the originating resource and a
/// deadline of twice the execution time on the originating resource.
///
/// Returns `(budget, deadline)`.
#[must_use]
pub fn fabricate_qos(job: &Job, origin: &ResourceSpec) -> (f64, f64) {
    let budget = 2.0 * cost(job, origin);
    let deadline = 2.0 * completion_time(job, origin, origin);
    (budget, deadline)
}

/// Applies [`fabricate_qos`] to a whole slice of jobs in place, preserving
/// each job's strategy assignment.
pub fn fabricate_qos_all(jobs: &mut [Job], origin: &ResourceSpec) {
    for job in jobs.iter_mut() {
        let (budget, deadline) = fabricate_qos(job, origin);
        job.qos.budget = budget;
        job.qos.deadline = deadline;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_workload::{JobId, Qos, Strategy, UserId};

    fn origin() -> ResourceSpec {
        // LANL CM5 from Table 1.
        ResourceSpec::new("LANL CM5", 1024, 700.0, 1.0, 3.98)
    }

    fn target_fast() -> ResourceSpec {
        // NASA iPSC: fastest and best-connected.
        ResourceSpec::new("NASA iPSC", 128, 930.0, 4.0, 5.3)
    }

    fn job() -> Job {
        Job {
            id: JobId { origin: 2, seq: 0 },
            user: UserId { origin: 2, local: 0 },
            submit: 0.0,
            processors: 32,
            // 1800 s of compute on the 700-MIPS origin.
            length_mi: 1_800.0 * 700.0 * 32.0,
            comm_overhead: 200.0,
            qos: Qos { budget: 0.0, deadline: 0.0, strategy: Strategy::Ofc },
        }
    }

    #[test]
    fn transfer_volume_is_alpha_times_origin_bandwidth() {
        assert!((transfer_volume(&job(), &origin()) - 200.0 * 1.0).abs() < 1e-12);
    }

    #[test]
    fn completion_time_on_origin_is_compute_plus_comm() {
        let d = completion_time(&job(), &origin(), &origin());
        assert!((d - (1_800.0 + 200.0)).abs() < 1e-9);
    }

    #[test]
    fn completion_time_on_faster_resource_is_shorter() {
        let j = job();
        let d_origin = completion_time(&j, &origin(), &origin());
        let d_fast = completion_time(&j, &target_fast(), &origin());
        // Compute shrinks by 700/930, comm shrinks by 1.0/4.0.
        let expected = 1_800.0 * 700.0 / 930.0 + 200.0 * 1.0 / 4.0;
        assert!((d_fast - expected).abs() < 1e-9);
        assert!(d_fast < d_origin);
    }

    #[test]
    fn cost_charges_only_compute_time() {
        let j = job();
        let b_origin = cost(&j, &origin());
        assert!((b_origin - 3.98 * 1_800.0).abs() < 1e-9);
        let b_fast = cost(&j, &target_fast());
        assert!((b_fast - 5.3 * (1_800.0 * 700.0 / 930.0)).abs() < 1e-6);
        // The fast resource is more expensive for this job even though it is
        // quicker — the price/speed ratio is what matters.
        assert!(b_fast > b_origin);
    }

    #[test]
    fn qos_fabrication_doubles_origin_cost_and_time() {
        let j = job();
        let (budget, deadline) = fabricate_qos(&j, &origin());
        assert!((budget - 2.0 * 3.98 * 1_800.0).abs() < 1e-9);
        assert!((deadline - 2.0 * 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn fabricate_all_preserves_strategy() {
        let mut jobs = vec![job(), job()];
        jobs[1].qos.strategy = Strategy::Oft;
        fabricate_qos_all(&mut jobs, &origin());
        assert_eq!(jobs[0].qos.strategy, Strategy::Ofc);
        assert_eq!(jobs[1].qos.strategy, Strategy::Oft);
        assert!(jobs.iter().all(|j| j.qos.budget > 0.0 && j.qos.deadline > 0.0));
    }

    #[test]
    fn budget_always_affords_the_origin_and_cheaper_resources() {
        // A corollary the scheduler relies on: with Eq. 7 budgets, OFC users
        // can always afford any resource whose price/MIPS ratio is at most
        // twice the origin's.
        let j = {
            let mut j = job();
            let (b, d) = fabricate_qos(&j, &origin());
            j.qos.budget = b;
            j.qos.deadline = d;
            j
        };
        assert!(cost(&j, &origin()) <= j.qos.budget);
        let cheaper = ResourceSpec::new("LANL Origin", 2048, 630.0, 1.6, 3.59);
        assert!(cost(&j, &cheaper) <= j.qos.budget);
    }
}
