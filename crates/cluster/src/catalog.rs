//! The resource and workload catalogue of the paper (Table 1 / Table 2).
//!
//! Each entry couples the advertised resource description with the
//! calibration targets the synthetic workload generator uses to stand in for
//! the original Parallel Workloads Archive traces: the number of jobs
//! submitted during the simulated two days ("Total Job" column of Table 2)
//! and the *offered load* implied by the reported utilization / rejection
//! figures.  See `DESIGN.md` §1 for the substitution argument.

use crate::resource::ResourceSpec;

/// One row of Table 1 plus the calibration targets derived from Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperResource {
    /// Resource description (name, processors, MIPS, bandwidth, quote).
    pub spec: ResourceSpec,
    /// Name of the archive trace the paper used for this resource.
    pub trace_name: &'static str,
    /// Number of jobs submitted over the simulated two days (Table 2).
    pub jobs_two_days: usize,
    /// Offered load target used to calibrate the synthetic trace.
    ///
    /// For under-subscribed resources this is close to the independent-case
    /// utilization of Table 2; for the two over-subscribed SDSC machines it
    /// exceeds 1.0, which is what produces their high rejection rates.
    pub offered_load: f64,
    /// Approximate number of distinct local users generating the jobs.
    pub user_count: usize,
}

/// The eight resources of Table 1, in the paper's index order (1-based in the
/// paper, 0-based here).
#[must_use]
pub fn paper_resources() -> Vec<PaperResource> {
    vec![
        PaperResource {
            spec: ResourceSpec::new("CTC SP2", 512, 850.0, 2.0, 4.84),
            trace_name: "CTC-SP2-1996-2.1-cln",
            jobs_two_days: 417,
            offered_load: 0.56,
            user_count: 48,
        },
        PaperResource {
            spec: ResourceSpec::new("KTH SP2", 100, 900.0, 1.6, 5.12),
            trace_name: "KTH-SP2-1996-2",
            jobs_two_days: 163,
            offered_load: 0.54,
            user_count: 24,
        },
        PaperResource {
            spec: ResourceSpec::new("LANL CM5", 1024, 700.0, 1.0, 3.98),
            trace_name: "LANL-CM5-1994-3.1-cln",
            jobs_two_days: 215,
            offered_load: 0.52,
            user_count: 32,
        },
        PaperResource {
            spec: ResourceSpec::new("LANL Origin", 2048, 630.0, 1.6, 3.59),
            trace_name: "LANL-O2K-1999-1",
            jobs_two_days: 817,
            offered_load: 0.48,
            user_count: 64,
        },
        PaperResource {
            spec: ResourceSpec::new("NASA iPSC", 128, 930.0, 4.0, 5.3),
            trace_name: "NASA-iPSC-1993-3.1-cln",
            jobs_two_days: 535,
            offered_load: 0.64,
            user_count: 40,
        },
        PaperResource {
            spec: ResourceSpec::new("SDSC Par96", 416, 710.0, 1.0, 4.04),
            trace_name: "SDSC-Par-1996-3.1-cln",
            jobs_two_days: 189,
            offered_load: 0.51,
            user_count: 28,
        },
        PaperResource {
            spec: ResourceSpec::new("SDSC Blue", 1152, 730.0, 2.0, 4.16),
            trace_name: "SDSC-BLUE-2000-4.2-cln",
            jobs_two_days: 215,
            offered_load: 1.35,
            user_count: 36,
        },
        PaperResource {
            spec: ResourceSpec::new("SDSC SP2", 128, 920.0, 4.0, 5.24),
            trace_name: "SDSC-SP2-1998-4.2-cln",
            jobs_two_days: 111,
            offered_load: 1.40,
            user_count: 20,
        },
    ]
}

/// Replicates the Table 1 resources to build a federation of `n` clusters,
/// exactly as Experiment 5 does ("to accomplish larger system size, we
/// replicated our existing resources accordingly").
#[must_use]
pub fn replicated_resources(n: usize) -> Vec<PaperResource> {
    let base = paper_resources();
    (0..n)
        .map(|i| {
            let source = &base[i % base.len()];
            let copy = i / base.len();
            PaperResource {
                spec: source.spec.replicated(copy),
                ..source.clone()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_eight_rows_with_paper_values() {
        let rs = paper_resources();
        assert_eq!(rs.len(), 8);
        let total_procs: u32 = rs.iter().map(|r| r.spec.processors).sum();
        assert_eq!(total_procs, 512 + 100 + 1024 + 2048 + 128 + 416 + 1152 + 128);
        // Quote column of Table 1.
        let quotes: Vec<f64> = rs.iter().map(|r| r.spec.price).collect();
        assert_eq!(quotes, vec![4.84, 5.12, 3.98, 3.59, 5.3, 4.04, 4.16, 5.24]);
        // NASA iPSC is the fastest, LANL Origin the cheapest — the two poles
        // the OFT/OFC strategies gravitate towards.
        let fastest = rs.iter().max_by(|a, b| a.spec.mips.total_cmp(&b.spec.mips)).unwrap();
        assert_eq!(fastest.spec.name, "NASA iPSC");
        let cheapest = rs.iter().min_by(|a, b| a.spec.price.total_cmp(&b.spec.price)).unwrap();
        assert_eq!(cheapest.spec.name, "LANL Origin");
    }

    #[test]
    fn price_is_proportional_to_speed() {
        // Eq. 6: c_i = (c / µ_max) · µ_i with c = 5.3 at µ_max = 930.
        for r in paper_resources() {
            let predicted = 5.3 / 930.0 * r.spec.mips;
            assert!(
                (predicted - r.spec.price).abs() < 0.02,
                "{}: predicted {predicted}, table says {}",
                r.spec.name,
                r.spec.price
            );
        }
    }

    #[test]
    fn two_day_job_counts_match_table2() {
        let counts: Vec<usize> = paper_resources().iter().map(|r| r.jobs_two_days).collect();
        assert_eq!(counts, vec![417, 163, 215, 817, 535, 189, 215, 111]);
        assert_eq!(counts.iter().sum::<usize>(), 2_662);
    }

    #[test]
    fn only_the_sdsc_machines_are_oversubscribed() {
        for r in paper_resources() {
            if r.spec.name.starts_with("SDSC Blue") || r.spec.name.starts_with("SDSC SP2") {
                assert!(r.offered_load > 1.0, "{} should be oversubscribed", r.spec.name);
            } else {
                assert!(r.offered_load < 0.7, "{} should be undersubscribed", r.spec.name);
            }
        }
    }

    #[test]
    fn replication_cycles_through_the_catalogue() {
        let reps = replicated_resources(20);
        assert_eq!(reps.len(), 20);
        assert_eq!(reps[0].spec.name, "CTC SP2");
        assert_eq!(reps[8].spec.name, "CTC SP2 #2");
        assert_eq!(reps[9].spec.name, "KTH SP2 #2");
        assert_eq!(reps[16].spec.name, "CTC SP2 #3");
        // Replicas keep the original capacity and calibration targets.
        assert_eq!(reps[8].spec.processors, 512);
        assert_eq!(reps[8].jobs_two_days, 417);
    }
}
