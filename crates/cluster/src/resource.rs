//! Cluster resource descriptions.

use std::fmt;

/// A cluster resource as advertised in the federation directory.
///
/// This is the paper's `R_i = (p_i, µ_i, γ_i)` together with the owner's
/// access price `c_i` (the *quote*).  All clusters are homogeneous
/// collections of machines, per the paper's definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceSpec {
    /// Human-readable name, e.g. `"CTC SP2"`.
    pub name: String,
    /// Number of processors `p_i`.
    pub processors: u32,
    /// Per-processor speed `µ_i` in MIPS.
    pub mips: f64,
    /// Interconnect bandwidth `γ_i` in Gb/s (NIC-to-network, Table 1).
    pub bandwidth: f64,
    /// Access price `c_i` in Grid Dollars per unit of computation
    /// (per 1000 MI in the paper's example; the unit cancels in comparisons).
    pub price: f64,
}

impl ResourceSpec {
    /// Creates a resource spec.
    ///
    /// # Panics
    /// Panics if any numeric field is non-positive.
    #[must_use]
    pub fn new(name: &str, processors: u32, mips: f64, bandwidth: f64, price: f64) -> Self {
        assert!(processors > 0, "a cluster needs at least one processor");
        assert!(mips > 0.0, "mips must be positive, got {mips}");
        assert!(bandwidth > 0.0, "bandwidth must be positive, got {bandwidth}");
        assert!(price > 0.0, "price must be positive, got {price}");
        ResourceSpec {
            name: name.to_string(),
            processors,
            mips,
            bandwidth,
            price,
        }
    }

    /// Aggregate compute capacity in MIPS (processors × per-processor speed).
    #[must_use]
    pub fn total_mips(&self) -> f64 {
        f64::from(self.processors) * self.mips
    }

    /// Price per *delivered* MIPS — the metric a cost-optimising user
    /// implicitly ranks resources by when all prices follow Eq. 6.
    #[must_use]
    pub fn price_per_mips(&self) -> f64 {
        self.price / self.mips
    }

    /// Returns a copy with a different name, used when replicating the
    /// Table 1 resources to build the larger federations of Experiment 5.
    #[must_use]
    pub fn replicated(&self, copy: usize) -> ResourceSpec {
        let mut spec = self.clone();
        if copy > 0 {
            spec.name = format!("{} #{}", self.name, copy + 1);
        }
        spec
    }
}

impl fmt::Display for ResourceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} procs × {} MIPS, {} Gb/s, {:.2} G$/unit)",
            self.name, self.processors, self.mips, self.bandwidth, self.price
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_derived_quantities() {
        let r = ResourceSpec::new("CTC SP2", 512, 850.0, 2.0, 4.84);
        assert_eq!(r.total_mips(), 512.0 * 850.0);
        assert!((r.price_per_mips() - 4.84 / 850.0).abs() < 1e-12);
        assert!(format!("{r}").contains("CTC SP2"));
    }

    #[test]
    fn replication_renames_later_copies() {
        let r = ResourceSpec::new("KTH SP2", 100, 900.0, 1.6, 5.12);
        assert_eq!(r.replicated(0).name, "KTH SP2");
        assert_eq!(r.replicated(2).name, "KTH SP2 #3");
        assert_eq!(r.replicated(2).processors, 100);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let _ = ResourceSpec::new("bad", 0, 1.0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "price must be positive")]
    fn zero_price_rejected() {
        let _ = ResourceSpec::new("bad", 1, 1.0, 1.0, 0.0);
    }
}
