//! The local resource management system (LRMS).
//!
//! Every federation cluster runs a PBS/SGE-like space-shared scheduler with a
//! single central queue (master–worker organisation, as the paper assumes).
//! [`SpaceSharedFcfs`] reproduces GridSim's `SpaceShared` allocation policy:
//! a job occupies `processors` dedicated PEs for its entire service time and
//! queued jobs start strictly in FCFS order.
//!
//! The scheduler is a passive state machine.  The caller owns the clock and
//! drives it with three calls:
//!
//! * [`LocalScheduler::submit_into`] when a job arrives,
//! * [`LocalScheduler::on_finished_into`] when a previously started job's
//!   finish time is reached,
//! * [`LocalScheduler::estimate_completion`] when the GFA needs the
//!   admission-control answer "when would this job finish if I accepted it
//!   right now?".
//!
//! The mutating calls take an out-parameter for the newly started jobs so the
//! steady-state event loop never allocates; [`LocalScheduler::submit`] and
//! [`LocalScheduler::on_finished`] are collecting conveniences for tests and
//! one-off callers.  `estimate_completion` answers from an epoch-stamped
//! availability profile (see [`crate::estimate`]) that is invalidated only
//! when scheduler state changes, making a quote O(log R) instead of a full
//! O((R+Q)·log(R+Q)) replay.

use std::cell::RefCell;
use std::collections::VecDeque;

use grid_workload::JobId;

use crate::estimate::{replay_estimate, QuoteCache};

/// A job as seen by the LRMS: identity, size and service time.
///
/// The service time is computed by the caller from the paper's cost model
/// (`D(J, R_m)`, Eq. 2), so the LRMS itself stays independent of the economy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterJob {
    /// Global job id.
    pub id: JobId,
    /// Processors the job occupies while running.
    pub processors: u32,
    /// Total service (execution) time in seconds on *this* cluster.
    pub service_time: f64,
}

/// A job the LRMS has dispatched onto processors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StartedJob {
    /// Global job id.
    pub id: JobId,
    /// Time the job started executing.
    pub start: f64,
    /// Time the job will finish executing (start + service time).
    pub finish: f64,
    /// Processors occupied.
    pub processors: u32,
}

/// Common interface of the local schedulers (`SpaceSharedFcfs` and the EASY
/// backfilling variant in [`crate::backfill`]).
pub trait LocalScheduler {
    /// Total processors managed by this scheduler.
    fn total_processors(&self) -> u32;

    /// Processors currently executing jobs.
    fn busy_processors(&self) -> u32;

    /// Number of running jobs.
    fn running_count(&self) -> usize;

    /// Number of queued (not yet started) jobs.
    fn queued_count(&self) -> usize;

    /// Submits a job at time `now`, appending every job that starts as a
    /// direct consequence (usually just this job, or nothing if it queued)
    /// to `started`.  The buffer is *appended to*, never cleared, so callers
    /// can reuse one scratch vector across the whole run.
    ///
    /// # Panics
    /// Implementations panic if the job requests more processors than the
    /// cluster owns or if time moves backwards.
    fn submit_into(&mut self, job: ClusterJob, now: f64, started: &mut Vec<StartedJob>);

    /// Notifies the scheduler that a running job finished at `now`,
    /// appending every queued job that starts as a consequence to `started`.
    ///
    /// # Panics
    /// Implementations panic if the job is not currently running.
    fn on_finished_into(&mut self, id: JobId, now: f64, started: &mut Vec<StartedJob>);

    /// Collecting convenience for [`Self::submit_into`]; allocates a fresh
    /// vector per call, so hot loops should use the out-parameter form.
    fn submit(&mut self, job: ClusterJob, now: f64) -> Vec<StartedJob> {
        let mut started = Vec::new();
        self.submit_into(job, now, &mut started);
        started
    }

    /// Collecting convenience for [`Self::on_finished_into`].
    fn on_finished(&mut self, id: JobId, now: f64) -> Vec<StartedJob> {
        let mut started = Vec::new();
        self.on_finished_into(id, now, &mut started);
        started
    }

    /// Estimated completion time (absolute) of a hypothetical job with the
    /// given size and service time submitted at `now`, assuming no further
    /// arrivals.  This is the quantity the GFA's admission control compares
    /// against the job deadline.
    fn estimate_completion(&self, processors: u32, service_time: f64, now: f64) -> f64;

    /// Busy processor-seconds accumulated up to `now` (the numerator of the
    /// utilization figure reported in Tables 2 and 3).
    fn busy_processor_seconds(&self, now: f64) -> f64;

    /// Average utilization over `[0, now]`: busy processor-seconds divided by
    /// total processor-seconds.  Returns 0 at time 0.
    fn utilization(&self, now: f64) -> f64 {
        if now <= 0.0 {
            return 0.0;
        }
        self.busy_processor_seconds(now) / (f64::from(self.total_processors()) * now)
    }
}

/// The space-shared FCFS local scheduler.
#[derive(Debug, Clone)]
pub struct SpaceSharedFcfs {
    total: u32,
    busy: u32,
    running: Vec<StartedJob>,
    queue: VecDeque<ClusterJob>,
    // Utilization accounting.
    busy_acc: f64,
    last_change: f64,
    completed_jobs: u64,
    /// Bumped on every state change; stamps the quote cache.
    epoch: u64,
    quote_cache: RefCell<QuoteCache>,
}

impl SpaceSharedFcfs {
    /// Creates a scheduler managing `processors` PEs.
    ///
    /// # Panics
    /// Panics if `processors == 0`.
    #[must_use]
    pub fn new(processors: u32) -> Self {
        assert!(processors > 0, "a cluster needs at least one processor");
        SpaceSharedFcfs {
            total: processors,
            busy: 0,
            running: Vec::new(),
            queue: VecDeque::new(),
            busy_acc: 0.0,
            last_change: 0.0,
            completed_jobs: 0,
            epoch: 0,
            quote_cache: RefCell::new(QuoteCache::default()),
        }
    }

    /// Number of jobs that have run to completion on this cluster.
    #[must_use]
    pub fn completed_jobs(&self) -> u64 {
        self.completed_jobs
    }

    /// The currently running jobs (primarily for tests and debugging).
    #[must_use]
    pub fn running_jobs(&self) -> &[StartedJob] {
        &self.running
    }

    /// The original full-replay estimator, retained as the differential
    /// oracle: property tests assert the incremental profile returns
    /// bit-identical answers, and `bench_perf` measures the speedup against
    /// it.
    #[must_use]
    pub fn estimate_completion_replay(&self, processors: u32, service_time: f64, now: f64) -> f64 {
        replay_estimate(
            self.total,
            self.busy,
            &self.running,
            &self.queue,
            processors,
            service_time,
            now,
        )
    }

    fn advance_accounting(&mut self, now: f64) {
        assert!(
            now + 1e-9 >= self.last_change,
            "time moved backwards: {now} < {}",
            self.last_change
        );
        let now = now.max(self.last_change);
        self.busy_acc += f64::from(self.busy) * (now - self.last_change);
        self.last_change = now;
    }

    fn start_job(&mut self, job: ClusterJob, now: f64) -> StartedJob {
        debug_assert!(self.busy + job.processors <= self.total);
        self.busy += job.processors;
        let started = StartedJob {
            id: job.id,
            start: now,
            finish: now + job.service_time,
            processors: job.processors,
        };
        self.running.push(started);
        started
    }

    fn try_start_queued(&mut self, now: f64, started: &mut Vec<StartedJob>) {
        while let Some(head) = self.queue.front() {
            if self.total - self.busy >= head.processors {
                let job = self.queue.pop_front().expect("front exists");
                let s = self.start_job(job, now);
                started.push(s);
            } else {
                break;
            }
        }
    }
}

impl LocalScheduler for SpaceSharedFcfs {
    fn total_processors(&self) -> u32 {
        self.total
    }

    fn busy_processors(&self) -> u32 {
        self.busy
    }

    fn running_count(&self) -> usize {
        self.running.len()
    }

    fn queued_count(&self) -> usize {
        self.queue.len()
    }

    fn submit_into(&mut self, job: ClusterJob, now: f64, started: &mut Vec<StartedJob>) {
        assert!(
            job.processors >= 1 && job.processors <= self.total,
            "job {} requests {} processors on a {}-processor cluster",
            job.id,
            job.processors,
            self.total
        );
        assert!(
            job.service_time >= 0.0 && job.service_time.is_finite(),
            "service time must be finite and non-negative"
        );
        self.advance_accounting(now);
        self.epoch += 1;
        self.queue.push_back(job);
        self.try_start_queued(now, started);
    }

    fn on_finished_into(&mut self, id: JobId, now: f64, started: &mut Vec<StartedJob>) {
        self.advance_accounting(now);
        self.epoch += 1;
        let pos = self
            .running
            .iter()
            .position(|r| r.id == id)
            .unwrap_or_else(|| panic!("job {id} is not running on this cluster"));
        let finished = self.running.swap_remove(pos);
        self.busy -= finished.processors;
        self.completed_jobs += 1;
        self.try_start_queued(now, started);
    }

    fn estimate_completion(&self, processors: u32, service_time: f64, now: f64) -> f64 {
        assert!(processors >= 1, "estimate needs at least one processor");
        if processors > self.total {
            return f64::INFINITY;
        }
        self.quote_cache.borrow_mut().estimate(
            self.total,
            self.busy,
            &self.running,
            &self.queue,
            self.epoch,
            processors,
            service_time,
            now,
        )
    }

    fn busy_processor_seconds(&self, now: f64) -> f64 {
        let extra = f64::from(self.busy) * (now - self.last_change).max(0.0);
        self.busy_acc + extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jid(seq: usize) -> JobId {
        JobId { origin: 0, seq }
    }

    fn job(seq: usize, procs: u32, service: f64) -> ClusterJob {
        ClusterJob {
            id: jid(seq),
            processors: procs,
            service_time: service,
        }
    }

    #[test]
    fn immediate_start_when_processors_available() {
        let mut s = SpaceSharedFcfs::new(16);
        let started = s.submit(job(0, 8, 100.0), 0.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].start, 0.0);
        assert_eq!(started[0].finish, 100.0);
        assert_eq!(s.busy_processors(), 8);
        assert_eq!(s.running_count(), 1);
        assert_eq!(s.queued_count(), 0);
    }

    #[test]
    fn out_parameter_appends_without_clearing() {
        let mut s = SpaceSharedFcfs::new(16);
        let mut scratch = Vec::new();
        s.submit_into(job(0, 8, 100.0), 0.0, &mut scratch);
        s.submit_into(job(1, 8, 50.0), 0.0, &mut scratch);
        assert_eq!(scratch.len(), 2);
        assert_eq!(scratch[0].id, jid(0));
        assert_eq!(scratch[1].id, jid(1));
    }

    #[test]
    fn fcfs_queueing_and_release() {
        let mut s = SpaceSharedFcfs::new(16);
        s.submit(job(0, 12, 100.0), 0.0);
        // Doesn't fit next to the 12-proc job.
        let started = s.submit(job(1, 8, 50.0), 10.0);
        assert!(started.is_empty());
        assert_eq!(s.queued_count(), 1);
        // A small job behind it must NOT jump the queue (strict FCFS).
        let started = s.submit(job(2, 2, 10.0), 20.0);
        assert!(started.is_empty());
        assert_eq!(s.queued_count(), 2);
        // When the big job finishes, both queued jobs fit (8 + 2 <= 16).
        let started = s.on_finished(jid(0), 100.0);
        assert_eq!(started.len(), 2);
        assert_eq!(started[0].id, jid(1));
        assert_eq!(started[0].start, 100.0);
        assert_eq!(started[1].id, jid(2));
        assert_eq!(s.busy_processors(), 10);
        assert_eq!(s.completed_jobs(), 1);
    }

    #[test]
    fn fcfs_head_blocks_smaller_jobs() {
        let mut s = SpaceSharedFcfs::new(16);
        s.submit(job(0, 10, 100.0), 0.0);
        s.submit(job(1, 10, 100.0), 0.0); // queued, needs 10, only 6 free
        s.submit(job(2, 4, 10.0), 0.0); // would fit, but FCFS forbids starting it
        assert_eq!(s.running_count(), 1);
        assert_eq!(s.queued_count(), 2);
        assert_eq!(s.busy_processors(), 10);
    }

    #[test]
    fn estimator_matches_reality_for_fcfs() {
        let mut s = SpaceSharedFcfs::new(16);
        s.submit(job(0, 12, 100.0), 0.0);
        s.submit(job(1, 8, 50.0), 10.0);
        s.submit(job(2, 10, 30.0), 20.0);
        // Estimate a 6-processor, 40 s job submitted at t = 25.
        // FCFS replay: job0 runs to 100; job1 starts at 100 (free 4→... wait).
        // At t=100: job0 done, free = 16; job1 (8) starts → free 8; job2 needs 10 → waits
        // until job1 finishes at 150 → free 16, job2 starts at 150 (ends 180), free 6;
        // our 6-proc job starts at 150 as well (6 <= 6) → finishes 190.
        let est = s.estimate_completion(6, 40.0, 25.0);
        assert!((est - 190.0).abs() < 1e-9, "estimate {est}");
        // The incremental profile and the retained replay oracle agree.
        assert_eq!(est.to_bits(), s.estimate_completion_replay(6, 40.0, 25.0).to_bits());

        // Now actually run it and compare.
        let started_new = s.submit(job(3, 6, 40.0), 25.0);
        assert!(started_new.is_empty());
        let mut finish_of_3 = None;
        // Drive completions in order of their finish times.
        let mut started = s.on_finished(jid(0), 100.0);
        while let Some(next) = started.iter().min_by(|a, b| a.finish.total_cmp(&b.finish)).copied() {
            let more = s.on_finished(next.id, next.finish);
            if next.id == jid(3) {
                finish_of_3 = Some(next.finish);
            }
            started.retain(|x| x.id != next.id);
            started.extend(more);
        }
        assert!((finish_of_3.unwrap() - est).abs() < 1e-9);
    }

    #[test]
    fn estimator_handles_empty_cluster_and_oversized_jobs() {
        let s = SpaceSharedFcfs::new(8);
        assert_eq!(s.estimate_completion(4, 100.0, 50.0), 150.0);
        assert_eq!(s.estimate_completion(9, 100.0, 50.0), f64::INFINITY);
        assert_eq!(s.estimate_completion_replay(9, 100.0, 50.0), f64::INFINITY);
    }

    #[test]
    fn repeated_quotes_between_state_changes_stay_exact() {
        let mut s = SpaceSharedFcfs::new(16);
        s.submit(job(0, 12, 100.0), 0.0);
        s.submit(job(1, 8, 50.0), 10.0);
        // A burst of differently-shaped quotes, as the DBC loop issues them.
        for procs in 1..=16u32 {
            for service in [0.0, 5.0, 80.0] {
                let inc = s.estimate_completion(procs, service, 20.0);
                let oracle = s.estimate_completion_replay(procs, service, 20.0);
                assert_eq!(inc.to_bits(), oracle.to_bits(), "procs={procs} service={service}");
            }
        }
        // State change invalidates the profile; quotes stay exact.
        s.on_finished(jid(0), 100.0);
        let inc = s.estimate_completion(16, 10.0, 100.0);
        let oracle = s.estimate_completion_replay(16, 10.0, 100.0);
        assert_eq!(inc.to_bits(), oracle.to_bits());
    }

    #[test]
    fn utilization_accounting() {
        let mut s = SpaceSharedFcfs::new(10);
        s.submit(job(0, 5, 100.0), 0.0);
        // At t=100 the job finishes: 5 procs × 100 s = 500 proc·s busy.
        s.on_finished(jid(0), 100.0);
        assert!((s.busy_processor_seconds(100.0) - 500.0).abs() < 1e-9);
        assert!((s.utilization(100.0) - 0.5).abs() < 1e-9);
        // Idle afterwards: utilization decays.
        assert!((s.utilization(200.0) - 0.25).abs() < 1e-9);
        assert_eq!(s.utilization(0.0), 0.0);
    }

    #[test]
    fn utilization_counts_partial_intervals_of_running_jobs() {
        let mut s = SpaceSharedFcfs::new(4);
        s.submit(job(0, 4, 1_000.0), 0.0);
        assert!((s.utilization(500.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "requests 32 processors")]
    fn oversized_submission_panics() {
        let mut s = SpaceSharedFcfs::new(16);
        s.submit(job(0, 32, 10.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn finishing_unknown_job_panics() {
        let mut s = SpaceSharedFcfs::new(16);
        s.on_finished(jid(7), 10.0);
    }

    #[test]
    #[should_panic(expected = "time moved backwards")]
    fn time_must_not_go_backwards() {
        let mut s = SpaceSharedFcfs::new(16);
        s.submit(job(0, 4, 10.0), 100.0);
        s.submit(job(1, 4, 10.0), 50.0);
    }

    #[test]
    fn zero_service_time_jobs_are_legal() {
        let mut s = SpaceSharedFcfs::new(4);
        let started = s.submit(job(0, 1, 0.0), 5.0);
        assert_eq!(started[0].finish, 5.0);
        s.on_finished(jid(0), 5.0);
        assert_eq!(s.busy_processors(), 0);
    }
}
