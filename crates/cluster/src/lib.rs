//! # grid-cluster — cluster resources and local resource management systems
//!
//! The Grid-Federation paper assumes that every participating cluster runs a
//! generalized LRMS (PBS, SGE, …) with a **space-shared**, centrally
//! coordinated allocation policy, and evaluates everything on top of
//! GridSim's `SpaceShared` entity.  This crate rebuilds that substrate:
//!
//! * [`resource::ResourceSpec`] — the paper's `R_i = (p_i, µ_i, γ_i)` plus the
//!   access price `c_i`,
//! * [`catalog`] — the eight resources of Table 1, together with the workload
//!   calibration targets used by the synthetic traces,
//! * [`cost`] — the analytic cost model of Eq. 1–4 and the budget/deadline
//!   fabrication of Eq. 7–8,
//! * [`lrms`] — the space-shared FCFS local scheduler (queue, allocation,
//!   completion-time estimation for admission control, utilization
//!   accounting),
//! * [`backfill`] — an EASY-backfilling variant used by the ablation
//!   benchmarks (not part of the paper's configuration, but a natural
//!   extension the paper's future-work section gestures at).
//!
//! The LRMS types are deliberately *passive* state machines: they are driven
//! by whoever owns the clock (the GFA entities inside `grid-federation-core`,
//! or unit tests calling them directly), and they never schedule events
//! themselves.  That keeps them reusable both inside the discrete-event
//! simulation and in standalone analytical tests.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backfill;
pub mod catalog;
pub mod cost;
mod estimate;
pub mod lrms;
pub mod resource;

pub use backfill::EasyBackfilling;
pub use catalog::{paper_resources, replicated_resources, PaperResource};
pub use cost::{
    completion_time, cost as job_cost, cost_per_kilo_mi, fabricate_qos, fabricate_qos_all,
    transfer_volume,
};
pub use lrms::{ClusterJob, LocalScheduler, SpaceSharedFcfs, StartedJob};
pub use resource::ResourceSpec;
