//! Differential property tests for the incremental admission-control
//! estimator: random submit/finish/estimate sequences driven through both
//! local scheduler policies must yield estimates that are **bit-identical**
//! to the retained naive replay oracle, for every probe shape and at every
//! query time (including quotes issued between state changes, where the
//! epoch-stamped profile is answered from cache).

use grid_cluster::{ClusterJob, EasyBackfilling, LocalScheduler, SpaceSharedFcfs, StartedJob};
use grid_workload::JobId;
use proptest::prelude::*;

/// The schedulers expose their retained replay estimator as an inherent
/// method; this local trait lets the differential driver stay generic.
trait ReplayOracle: LocalScheduler {
    fn oracle(&self, processors: u32, service_time: f64, now: f64) -> f64;
}

impl ReplayOracle for SpaceSharedFcfs {
    fn oracle(&self, processors: u32, service_time: f64, now: f64) -> f64 {
        self.estimate_completion_replay(processors, service_time, now)
    }
}

impl ReplayOracle for EasyBackfilling {
    fn oracle(&self, processors: u32, service_time: f64, now: f64) -> f64 {
        self.estimate_completion_replay(processors, service_time, now)
    }
}

#[derive(Debug, Clone)]
struct Step {
    arrival_gap: f64,
    procs_fraction: f64,
    service: f64,
    /// How far past the submission the quote burst is issued (exercises the
    /// cached profile at `now` strictly between state changes).
    quote_gap: f64,
    probe_procs_fraction: f64,
    probe_service: f64,
}

fn step() -> impl Strategy<Value = Step> {
    (
        0.0f64..400.0,
        0.0f64..1.1, // deliberately overshoots so oversized probes occur
        0.0f64..3_000.0,
        0.0f64..50.0,
        0.0f64..1.3,
        0.0f64..2_000.0,
    )
        .prop_map(
            |(arrival_gap, procs_fraction, service, quote_gap, probe_procs_fraction, probe_service)| Step {
                arrival_gap,
                procs_fraction,
                service,
                quote_gap,
                probe_procs_fraction,
                probe_service,
            },
        )
}

fn procs_for(total: u32, fraction: f64) -> u32 {
    ((f64::from(total) * fraction).ceil() as u32).max(1)
}

/// Drives one scheduler through the whole random sequence, comparing the
/// incremental estimator against the replay oracle after every state change
/// and between state changes.
fn differential_drive<S: ReplayOracle>(scheduler: &mut S, total: u32, steps: &[Step]) {
    let mut running: Vec<StartedJob> = Vec::new();
    let mut scratch: Vec<StartedJob> = Vec::new();
    let mut now = 0.0f64;

    let check = |s: &S, probe_procs: u32, probe_service: f64, at: f64| {
        let incremental = s.estimate_completion(probe_procs, probe_service, at);
        let oracle = s.oracle(probe_procs, probe_service, at);
        assert_eq!(
            incremental.to_bits(),
            oracle.to_bits(),
            "estimator diverged: incremental {incremental} vs oracle {oracle} \
             (procs {probe_procs}, service {probe_service}, now {at})"
        );
    };

    for (i, input) in steps.iter().enumerate() {
        let arrival = now + input.arrival_gap;
        // Deliver completions that precede this arrival, in finish order,
        // quoting after each state change.
        while let Some(next) = running
            .iter()
            .filter(|s| s.finish <= arrival)
            .min_by(|a, b| a.finish.total_cmp(&b.finish))
            .copied()
        {
            running.retain(|s| s.id != next.id);
            scratch.clear();
            scheduler.on_finished_into(next.id, next.finish, &mut scratch);
            running.extend(scratch.iter().copied());
            let probe = procs_for(total, input.probe_procs_fraction);
            check(scheduler, probe, input.probe_service, next.finish);
        }
        now = arrival;
        let procs = procs_for(total, input.procs_fraction).min(total);
        scratch.clear();
        scheduler.submit_into(
            ClusterJob {
                id: JobId { origin: 0, seq: i },
                processors: procs,
                service_time: input.service,
            },
            now,
            &mut scratch,
        );
        running.extend(scratch.iter().copied());

        // Quote burst right at the state change…
        let probe = procs_for(total, input.probe_procs_fraction);
        check(scheduler, probe, input.probe_service, now);
        check(scheduler, probe.min(total).max(1), 0.0, now);
        // …and again strictly between state changes (the cached-profile
        // path; the estimator must fall back to a rebuild whenever the
        // cached window cannot answer this `now` exactly).
        let later = now + input.quote_gap;
        check(scheduler, probe, input.probe_service, later);
        check(scheduler, 1, input.probe_service, later);
        check(scheduler, total, input.probe_service, later);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FCFS: incremental estimates are bit-identical to the replay oracle
    /// across random workloads and probe shapes.
    #[test]
    fn fcfs_incremental_estimator_matches_replay_oracle(
        steps in proptest::collection::vec(step(), 1..50),
        procs_pow in 3u32..9,
    ) {
        let total = 1u32 << procs_pow;
        let mut scheduler = SpaceSharedFcfs::new(total);
        differential_drive(&mut scheduler, total, &steps);
    }

    /// EASY backfilling: the conservative FCFS-bound estimator stays
    /// bit-identical to its replay oracle even though the queue is reordered
    /// by backfilling between quotes.
    #[test]
    fn easy_incremental_estimator_matches_replay_oracle(
        steps in proptest::collection::vec(step(), 1..50),
        procs_pow in 3u32..9,
    ) {
        let total = 1u32 << procs_pow;
        let mut scheduler = EasyBackfilling::new(total);
        differential_drive(&mut scheduler, total, &steps);
    }
}
