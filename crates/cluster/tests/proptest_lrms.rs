//! Property-based tests for the local schedulers: the space-shared FCFS
//! policy and the EASY-backfilling variant must never over-allocate
//! processors, must account utilization consistently, and their
//! completion-time estimators must be safe (never optimistic for FCFS).

use grid_cluster::{ClusterJob, EasyBackfilling, LocalScheduler, SpaceSharedFcfs};
use grid_workload::JobId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct JobInput {
    arrival_gap: f64,
    procs_fraction: f64,
    service: f64,
}

fn job_input() -> impl Strategy<Value = JobInput> {
    (0.0f64..500.0, 0.01f64..1.0, 1.0f64..5_000.0).prop_map(|(arrival_gap, procs_fraction, service)| {
        JobInput {
            arrival_gap,
            procs_fraction,
            service,
        }
    })
}

/// Drives a scheduler through a whole workload, checking capacity and time
/// monotonicity at every step, and returns (completed jobs, makespan).
fn drive<S: LocalScheduler>(
    scheduler: &mut S,
    total_procs: u32,
    inputs: &[JobInput],
) -> (usize, f64) {
    let mut running: Vec<grid_cluster::StartedJob> = Vec::new();
    let mut now = 0.0f64;
    let mut completed = 0usize;
    for (i, input) in inputs.iter().enumerate() {
        // Finish everything that ends before this arrival.
        let arrival = now + input.arrival_gap;
        while let Some(next) = running
            .iter()
            .filter(|s| s.finish <= arrival)
            .min_by(|a, b| a.finish.total_cmp(&b.finish))
            .copied()
        {
            running.retain(|s| s.id != next.id);
            let newly = scheduler.on_finished(next.id, next.finish);
            completed += 1;
            running.extend(newly);
            assert!(scheduler.busy_processors() <= total_procs);
        }
        now = arrival;
        let procs = ((f64::from(total_procs) * input.procs_fraction).ceil() as u32).clamp(1, total_procs);
        let started = scheduler.submit(
            ClusterJob {
                id: JobId { origin: 0, seq: i },
                processors: procs,
                service_time: input.service,
            },
            now,
        );
        running.extend(started);
        assert!(scheduler.busy_processors() <= total_procs, "over-allocation");
    }
    // Drain the rest.
    let mut makespan = now;
    while let Some(next) = running
        .iter()
        .min_by(|a, b| a.finish.total_cmp(&b.finish))
        .copied()
    {
        running.retain(|s| s.id != next.id);
        let newly = scheduler.on_finished(next.id, next.finish);
        completed += 1;
        makespan = makespan.max(next.finish);
        running.extend(newly);
        assert!(scheduler.busy_processors() <= total_procs);
    }
    (completed, makespan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both schedulers run every submitted job exactly once, never
    /// over-allocate and end up with an empty machine whose accumulated busy
    /// time equals the total submitted work.
    #[test]
    fn schedulers_conserve_work(
        inputs in proptest::collection::vec(job_input(), 1..60),
        procs_pow in 3u32..9,
    ) {
        let total_procs = 1u32 << procs_pow;
        let total_work: f64 = inputs
            .iter()
            .map(|i| {
                let procs = ((f64::from(total_procs) * i.procs_fraction).ceil() as u32)
                    .clamp(1, total_procs);
                i.service * f64::from(procs)
            })
            .sum();

        let mut fcfs = SpaceSharedFcfs::new(total_procs);
        let (completed, makespan) = drive(&mut fcfs, total_procs, &inputs);
        prop_assert_eq!(completed, inputs.len());
        prop_assert_eq!(fcfs.busy_processors(), 0);
        prop_assert_eq!(fcfs.queued_count(), 0);
        let busy = fcfs.busy_processor_seconds(makespan);
        prop_assert!((busy - total_work).abs() <= 1e-6 * total_work.max(1.0),
            "FCFS busy {} != submitted work {}", busy, total_work);
        prop_assert!(fcfs.utilization(makespan) <= 1.0 + 1e-9);

        let mut easy = EasyBackfilling::new(total_procs);
        let (completed_e, makespan_e) = drive(&mut easy, total_procs, &inputs);
        prop_assert_eq!(completed_e, inputs.len());
        prop_assert_eq!(easy.busy_processors(), 0);
        let busy_e = easy.busy_processor_seconds(makespan_e);
        prop_assert!((busy_e - total_work).abs() <= 1e-6 * total_work.max(1.0));
        // Backfilling can only help the makespan on identical input when all
        // arrivals and services are identical... in general it may differ, but
        // it must never lose or duplicate work (checked above).
    }

    /// For FCFS without future arrivals, the completion-time estimator is
    /// exact: submitting the probed job immediately afterwards realises the
    /// estimated completion time.
    #[test]
    fn fcfs_estimator_is_exact(
        inputs in proptest::collection::vec(job_input(), 0..30),
        probe in job_input(),
        procs_pow in 3u32..8,
    ) {
        let total_procs = 1u32 << procs_pow;
        let mut fcfs = SpaceSharedFcfs::new(total_procs);
        let mut running: Vec<grid_cluster::StartedJob> = Vec::new();
        let mut now = 0.0;
        for (i, input) in inputs.iter().enumerate() {
            now += input.arrival_gap;
            let procs = ((f64::from(total_procs) * input.procs_fraction).ceil() as u32)
                .clamp(1, total_procs);
            running.extend(fcfs.submit(
                ClusterJob { id: JobId { origin: 0, seq: i }, processors: procs, service_time: input.service },
                now,
            ));
        }
        let probe_procs = ((f64::from(total_procs) * probe.procs_fraction).ceil() as u32)
            .clamp(1, total_procs);
        let estimate = fcfs.estimate_completion(probe_procs, probe.service, now);

        // Now actually submit the probe job and replay completions.
        let probe_id = JobId { origin: 9, seq: 0 };
        running.extend(fcfs.submit(
            ClusterJob { id: probe_id, processors: probe_procs, service_time: probe.service },
            now,
        ));
        let mut actual = None;
        while let Some(next) = running
            .iter()
            .min_by(|a, b| a.finish.total_cmp(&b.finish))
            .copied()
        {
            running.retain(|s| s.id != next.id);
            if next.id == probe_id {
                actual = Some(next.finish);
            }
            // Jobs whose finish time precedes the last submission are
            // acknowledged "late": the LRMS clock must not move backwards.
            running.extend(fcfs.on_finished(next.id, next.finish.max(now)));
        }
        let actual = actual.expect("probe job must complete");
        prop_assert!((actual - estimate).abs() < 1e-6,
            "estimate {} but realised {}", estimate, actual);
    }
}
