//! Self-profiling: wall-clock per-event-type handler timing.
//!
//! [`HandlerProfiler`] implements the engine's [`EventProfiler`] hook: the
//! simulation brackets every `Entity::on_event` call with `enter`/`exit`,
//! and the profiler charges the elapsed wall-clock time to a per-event-type
//! row in a shared [`ProfileTable`].  This is the **only** place in the
//! observability layer — and, outside the benchmark crate, the only place
//! in the workspace — allowed to read `Instant::now`: timings live strictly
//! outside simulation state, so the profile can never perturb a run, only
//! describe it.  The aggregated table feeds the `profile` section of
//! `BENCH_perf.json`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Instant;

use grid_des::EventProfiler;

/// Accumulated timing for one event type.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProfileEntry {
    /// Number of handler invocations charged to this row.
    pub events: u64,
    /// Total wall-clock seconds spent in those handlers.
    pub total_secs: f64,
    /// The single slowest invocation, in seconds.
    pub max_secs: f64,
}

impl ProfileEntry {
    /// Mean handler time in seconds (0 when no events were charged).
    #[must_use]
    pub fn mean_secs(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.total_secs / self.events as f64
        }
    }
}

/// Aggregated per-event-type handler timings, keyed by the static label the
/// model's classifier assigns to each payload.  `BTreeMap` keeps the rows in
/// deterministic label order for stable JSON and table output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileTable {
    entries: BTreeMap<&'static str, ProfileEntry>,
}

impl ProfileTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> ProfileTable {
        ProfileTable::default()
    }

    /// Charges one handler invocation of `secs` seconds to `label`.
    pub fn record(&mut self, label: &'static str, secs: f64) {
        let entry = self.entries.entry(label).or_default();
        entry.events += 1;
        entry.total_secs += secs;
        if secs > entry.max_secs {
            entry.max_secs = secs;
        }
    }

    /// The rows in deterministic (label-sorted) order.
    pub fn rows(&self) -> impl Iterator<Item = (&'static str, &ProfileEntry)> {
        self.entries.iter().map(|(label, entry)| (*label, entry))
    }

    /// Total handler invocations across all rows.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.entries.values().map(|e| e.events).sum()
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the table as a JSON object keyed by label, suitable for
    /// embedding as the `profile` section of `BENCH_perf.json`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (label, entry)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(
                out,
                "  \"{}\": {{ \"events\": {}, \"total_us\": {:.2}, \"mean_ns\": {:.1}, \"max_us\": {:.2} }}",
                crate::json::esc(label),
                entry.events,
                entry.total_secs * 1e6,
                entry.mean_secs() * 1e9,
                entry.max_secs * 1e6,
            );
        }
        out.push_str("\n}");
        out
    }
}

/// The engine-facing profiler: classifies each payload to a static label via
/// the supplied closure, times the handler with `Instant`, and charges the
/// shared [`ProfileTable`].
pub struct HandlerProfiler<M> {
    label: Box<dyn Fn(&M) -> &'static str>,
    table: Rc<RefCell<ProfileTable>>,
    open: Option<(&'static str, Instant)>,
}

impl<M> HandlerProfiler<M> {
    /// Creates a profiler charging the given shared table, classifying
    /// payloads with `label`.
    pub fn new(
        table: Rc<RefCell<ProfileTable>>,
        label: impl Fn(&M) -> &'static str + 'static,
    ) -> HandlerProfiler<M> {
        HandlerProfiler { label: Box::new(label), table, open: None }
    }
}

impl<M> std::fmt::Debug for HandlerProfiler<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HandlerProfiler")
            .field("open", &self.open.as_ref().map(|(label, _)| label))
            .finish_non_exhaustive()
    }
}

impl<M> EventProfiler<M> for HandlerProfiler<M> {
    fn enter(&mut self, payload: &M) {
        self.open = Some(((self.label)(payload), Instant::now()));
    }

    fn exit(&mut self) {
        if let Some((label, started)) = self.open.take() {
            self.table.borrow_mut().record(label, started.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aggregates_per_label() {
        let mut table = ProfileTable::new();
        table.record("negotiate", 2e-6);
        table.record("negotiate", 4e-6);
        table.record("dispatch", 1e-6);
        let rows: Vec<_> = table.rows().collect();
        assert_eq!(rows.len(), 2);
        // BTreeMap order: dispatch before negotiate.
        assert_eq!(rows[0].0, "dispatch");
        assert_eq!(rows[1].0, "negotiate");
        let negotiate = rows[1].1;
        assert_eq!(negotiate.events, 2);
        assert!((negotiate.total_secs - 6e-6).abs() < 1e-12);
        assert!((negotiate.max_secs - 4e-6).abs() < 1e-12);
        assert!((negotiate.mean_secs() - 3e-6).abs() < 1e-12);
        assert_eq!(table.total_events(), 3);
    }

    #[test]
    fn json_output_parses_and_carries_every_row() {
        let mut table = ProfileTable::new();
        table.record("a", 1e-6);
        table.record("b", 2e-6);
        let doc = table.to_json();
        let parsed = crate::json::parse(&doc).expect("profile json parses");
        assert!(parsed.get("a").is_some());
        assert_eq!(
            parsed.get("b").and_then(|b| b.get("events")).and_then(crate::json::Json::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn profiler_charges_bracketed_time() {
        #[derive(Debug)]
        enum Msg {
            Tick,
        }
        let table = Rc::new(RefCell::new(ProfileTable::new()));
        let mut profiler = HandlerProfiler::new(Rc::clone(&table), |_msg: &Msg| "tick");
        profiler.enter(&Msg::Tick);
        profiler.exit();
        profiler.exit(); // unpaired exit is a no-op
        let table = table.borrow();
        let (label, entry) = table.rows().next().expect("one row");
        assert_eq!(label, "tick");
        assert_eq!(entry.events, 1);
        assert!(entry.total_secs >= 0.0);
    }
}
