//! grid-obs — the federation's deterministic observability layer.
//!
//! Three read-only surfaces, threaded through the simulation by
//! `grid-federation-core`:
//!
//! * [`metrics`] — a static-id registry of counters, float accumulators and
//!   log-linear (HDR-style) histograms with per-GFA and per-run scopes.  The
//!   registry is *always on*: recording a sample is an array increment, so
//!   the sim crates use it as their one accounting surface (the ad-hoc
//!   cache/churn/network tallies of earlier PRs now live here) and the
//!   percentile panels (p50/p90/p99 job wait, slowdown, lookup latency,
//!   queue depth) fall out of every run for free.
//! * [`trace`] — a span-aware sink implementing the `grid-des`
//!   [`TraceSink`](grid_des::TraceSink) extension: causal job-lifecycle
//!   spans (submit → probe → negotiation → dispatch → completion) linked
//!   across GFAs by envelope sequence numbers, exported in Chrome Trace
//!   Format for Perfetto / `chrome://tracing`.
//! * [`profile`] — an [`EventProfiler`](grid_des::EventProfiler) measuring
//!   wall-clock per-event-type handler time.  This module is the **only**
//!   place in the workspace outside benches where reading the host clock is
//!   sanctioned; the measurements live strictly outside sim state and feed
//!   `BENCH_perf.json`.
//!
//! Everything here is inert by construction: no method mutates simulation
//! state, consumes simulation randomness, or participates in the audit
//! ledger, so `RunDigest`s are bit-identical with the sinks armed or
//! absent (a differential the core test-suite asserts across backends,
//! churn and network faults).

#![deny(missing_docs)]

pub mod json;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use metrics::{Counter, FSum, HistId, Histogram, MetricsRegistry, PercentileSummary, Quantiles};
pub use profile::{HandlerProfiler, ProfileEntry, ProfileTable};
pub use trace::SpanCollector;
