//! A minimal, dependency-free JSON reader and string-escape helper.
//!
//! The workspace writes all of its JSON by hand (the `bench_perf` /
//! `perf_gate` precedent); this module adds the *reading* half so tests can
//! assert that the emitted artifacts — the Chrome trace and the metrics
//! registry dump — actually parse, without taking a serde dependency in an
//! offline build.  It is a straightforward recursive-descent parser over
//! the JSON grammar; numbers come back as `f64`, which is exact for every
//! integer the artifacts contain.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order (duplicate keys retained).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
/// Returns a message naming the byte offset of the first syntax error, or
/// trailing garbage after the top-level value.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", b as char, pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}", pos = *pos))?;
                        // Surrogate pairs do not occur in the artifacts;
                        // map unpaired surrogates to U+FFFD like a lenient
                        // reader would.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            _ => {
                // Copy the full UTF-8 code point.
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}", pos = *pos))?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

/// Escapes a string for inclusion inside a JSON string literal.
#[must_use]
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_representative_document() {
        let doc = r#"{ "a": [1, 2.5, -3e2], "b": { "s": "x\ny" }, "t": true, "n": null }"#;
        let v = parse(doc).expect("parse");
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").and_then(|b| b.get("s")).and_then(Json::as_str), Some("x\ny"));
        assert_eq!(v.get("t"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_survives_a_parse_round_trip() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode…";
        let doc = format!("{{ \"k\": \"{}\" }}", esc(nasty));
        let v = parse(&doc).expect("parse escaped");
        assert_eq!(v.get("k").and_then(Json::as_str), Some(nasty));
    }
}
