//! The static-id metrics registry: counters, float accumulators and
//! log-linear (HDR-style) histograms with per-GFA and per-run scopes.
//!
//! Every instrument is identified by a small enum, so recording is an array
//! index away from free: a counter bump is `run[i] += 1; gfa[g][i] += 1`,
//! and a histogram observation is two increments plus an exponent extract.
//! Nothing here allocates on the hot path after the first observation, and
//! nothing reads simulation state — the registry only ever receives values
//! the caller already computed.
//!
//! The histogram is the classic log-linear design: the f64's exponent picks
//! an octave, the top three mantissa bits pick one of eight sub-buckets, so
//! quantiles carry at most ~±6 % relative error over the full range the
//! simulation produces (sub-microsecond latencies to multi-day waits).
//! Quantiles are reported from the bucket midpoint, clamped into the
//! observed `[min, max]`, which keeps p50/p90/p99 deterministic across
//! hosts — no sampling, no interpolation on machine-dependent layouts.

use std::fmt::Write as _;

/// Monotone event counters, one accounting surface for tallies that earlier
/// PRs kept as loose struct fields (`CacheStats`, `ChurnSummary`,
/// `NetworkSummary`).  The reported summaries are reconstructed from these
/// ids at report time, value-for-value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Quote-cache hits (per-GFA caches, merged at run end).
    CacheHits,
    /// Quote-cache misses.
    CacheMisses,
    /// Graceful departures under churn.
    GracefulLeaves,
    /// Crash departures under churn.
    Crashes,
    /// Nodes re-joining the overlay.
    Rejoins,
    /// Periodic stabilization rounds executed.
    StabilizationRounds,
    /// Messages spent on stabilization.
    StabilizationMessages,
    /// Directory lookups that hit a departed node.
    LookupFaults,
    /// Bounded lookup retries after a fault.
    FaultRetries,
    /// Jobs that fell back to local execution after exhausting retries.
    LocalFallbacks,
    /// Reactive ring repairs triggered by a faulted lookup.
    ReactiveRepairs,
    /// Messages spent on reactive repairs.
    ReactiveRepairMessages,
    /// Protocol messages wrapped in a sequenced envelope.
    NetEnveloped,
    /// Envelope retransmissions on lossy links.
    NetRetransmissions,
    /// Envelopes duplicated by the link.
    NetDuplicates,
    /// Duplicate envelopes dropped by the receiver's dedup window.
    NetDedupDrops,
    /// Extra directory-query messages charged to retransmissions.
    NetDirectoryRetransmissions,
    /// Extra publish messages charged to retransmissions.
    NetPublishRetransmissions,
    /// Jobs that completed (locally or remotely).
    JobsCompleted,
    /// Jobs rejected by every feasible candidate.
    JobsRejected,
}

impl Counter {
    /// Number of counter ids (array dimension).
    pub const COUNT: usize = 20;

    /// All counters, in reporting order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::GracefulLeaves,
        Counter::Crashes,
        Counter::Rejoins,
        Counter::StabilizationRounds,
        Counter::StabilizationMessages,
        Counter::LookupFaults,
        Counter::FaultRetries,
        Counter::LocalFallbacks,
        Counter::ReactiveRepairs,
        Counter::ReactiveRepairMessages,
        Counter::NetEnveloped,
        Counter::NetRetransmissions,
        Counter::NetDuplicates,
        Counter::NetDedupDrops,
        Counter::NetDirectoryRetransmissions,
        Counter::NetPublishRetransmissions,
        Counter::JobsCompleted,
        Counter::JobsRejected,
    ];

    /// Stable snake_case id used in `--metrics-out` artifacts.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Counter::CacheHits => "directory_cache_hits",
            Counter::CacheMisses => "directory_cache_misses",
            Counter::GracefulLeaves => "churn_graceful_leaves",
            Counter::Crashes => "churn_crashes",
            Counter::Rejoins => "churn_rejoins",
            Counter::StabilizationRounds => "churn_stabilization_rounds",
            Counter::StabilizationMessages => "churn_stabilization_messages",
            Counter::LookupFaults => "churn_lookup_faults",
            Counter::FaultRetries => "churn_retries",
            Counter::LocalFallbacks => "churn_local_fallbacks",
            Counter::ReactiveRepairs => "churn_reactive_repairs",
            Counter::ReactiveRepairMessages => "churn_reactive_repair_messages",
            Counter::NetEnveloped => "net_enveloped",
            Counter::NetRetransmissions => "net_retransmissions",
            Counter::NetDuplicates => "net_duplicates",
            Counter::NetDedupDrops => "net_dedup_drops",
            Counter::NetDirectoryRetransmissions => "net_directory_retransmissions",
            Counter::NetPublishRetransmissions => "net_publish_retransmissions",
            Counter::JobsCompleted => "jobs_completed",
            Counter::JobsRejected => "jobs_rejected",
        }
    }
}

/// Float accumulators (sums of simulated seconds); kept apart from the
/// `u64` counters so every addition stays in the exact order the events
/// fired — the reconstructed summary values are bit-identical to the loose
/// fields they replaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FSum {
    /// Simulated seconds jobs spent waiting out lookup-fault retries.
    FaultWaitSeconds,
    /// Simulated seconds of link jitter added to envelope deliveries.
    JitterSeconds,
    /// Simulated seconds of retransmission backoff added to deliveries.
    BackoffSeconds,
}

impl FSum {
    /// Number of float-accumulator ids.
    pub const COUNT: usize = 3;

    /// All accumulators, in reporting order.
    pub const ALL: [FSum; FSum::COUNT] =
        [FSum::FaultWaitSeconds, FSum::JitterSeconds, FSum::BackoffSeconds];

    /// Stable snake_case id used in `--metrics-out` artifacts.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            FSum::FaultWaitSeconds => "churn_fault_wait_seconds",
            FSum::JitterSeconds => "net_jitter_seconds",
            FSum::BackoffSeconds => "net_backoff_seconds",
        }
    }
}

/// Run-scope histogram ids, recorded at event boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistId {
    /// Seconds between a job's submission and its execution start.
    JobWait,
    /// (finish − submit) / service-time of completed jobs.
    JobSlowdown,
    /// Negotiation + directory messages spent per concluded job.
    NegotiationMessages,
    /// Simulated seconds charged per directory lookup.
    DirectoryLookupLatency,
    /// LRMS queue depth observed at job-arrival and job-finish boundaries.
    QueueDepth,
}

impl HistId {
    /// Number of histogram ids.
    pub const COUNT: usize = 5;

    /// All histograms, in reporting order.
    pub const ALL: [HistId; HistId::COUNT] = [
        HistId::JobWait,
        HistId::JobSlowdown,
        HistId::NegotiationMessages,
        HistId::DirectoryLookupLatency,
        HistId::QueueDepth,
    ];

    /// Stable snake_case id used in `--metrics-out` artifacts.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            HistId::JobWait => "job_wait_seconds",
            HistId::JobSlowdown => "job_slowdown",
            HistId::NegotiationMessages => "negotiation_messages_per_job",
            HistId::DirectoryLookupLatency => "directory_lookup_seconds",
            HistId::QueueDepth => "queue_depth",
        }
    }
}

/// Lowest biased exponent with its own octave (≈ 6e-8); smaller values
/// share the first octave's floor bucket.
const EXP_LOW: i64 = 1023 - 24;
/// Highest biased exponent with its own octave (≈ 1.1e12); larger values
/// saturate into the top bucket.
const EXP_HIGH: i64 = 1023 + 40;
/// Sub-buckets per octave (top three mantissa bits).
const SUBS: usize = 8;
/// Dense bucket count: one zero/negative bucket plus eight sub-buckets per
/// octave across the covered exponent range.
const BUCKETS: usize = 1 + (EXP_HIGH - EXP_LOW + 1) as usize * SUBS;

/// A log-linear histogram: eight sub-buckets per power-of-two octave, a
/// dedicated zero bucket, and saturating under/overflow — every observation
/// lands somewhere, and quantiles come back with ≤ ~6 % relative error.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Allocated lazily on the first observation, so untouched histograms
    /// cost four words.
    buckets: Vec<u64>,
}

/// Dense bucket index of a sample (0 = zero/negative/NaN).
fn bucket_index(v: f64) -> usize {
    if v.partial_cmp(&0.0) != Some(core::cmp::Ordering::Greater) {
        return 0;
    }
    let bits = v.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i64;
    let mut sub = ((bits >> 49) & 0x7) as usize;
    if e < EXP_LOW {
        e = EXP_LOW;
        sub = 0;
    } else if e > EXP_HIGH {
        e = EXP_HIGH;
        sub = SUBS - 1;
    }
    1 + (e - EXP_LOW) as usize * SUBS + sub
}

/// Midpoint value represented by a dense bucket index.
fn bucket_value(idx: usize) -> f64 {
    if idx == 0 {
        return 0.0;
    }
    let e = EXP_LOW + ((idx - 1) / SUBS) as i64;
    let sub = (idx - 1) % SUBS;
    let scale = ((e - 1023) as f64).exp2();
    scale * (1.0 + (sub as f64 + 0.5) / SUBS as f64)
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, v: f64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; BUCKETS];
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        self.buckets[bucket_index(v)] += 1;
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (for means).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the midpoint of the bucket that
    /// holds the rank-⌈q·count⌉ sample, clamped into the observed range.
    /// Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_value(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// p50/p90/p99 plus the sample count, the unit every percentile panel
/// renders.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Quantiles {
    /// Number of samples behind the percentiles.
    pub count: u64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Quantiles {
    /// Extracts the panel quantiles from a histogram.
    #[must_use]
    pub fn of(hist: &Histogram) -> Quantiles {
        Quantiles {
            count: hist.count(),
            p50: hist.quantile(0.50),
            p90: hist.quantile(0.90),
            p99: hist.quantile(0.99),
        }
    }
}

/// The percentile panel surfaced on `FederationReport`: one [`Quantiles`]
/// row per run-scope histogram.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PercentileSummary {
    /// Job wait (seconds to execution start).
    pub wait: Quantiles,
    /// Job slowdown (response time / service time).
    pub slowdown: Quantiles,
    /// Negotiation + directory messages per concluded job.
    pub negotiation_messages: Quantiles,
    /// Directory lookup latency (simulated seconds).
    pub lookup_latency: Quantiles,
    /// LRMS queue depth at event boundaries.
    pub queue_depth: Quantiles,
}

/// One scope's counters and accumulators (the run scope and each GFA hold
/// one of these; histograms are run-scope only).
#[derive(Debug, Clone, PartialEq)]
struct Scope {
    counters: [u64; Counter::COUNT],
    fsums: [f64; FSum::COUNT],
}

impl Scope {
    fn new() -> Scope {
        Scope { counters: [0; Counter::COUNT], fsums: [0.0; FSum::COUNT] }
    }
}

/// The registry: a run scope, one scope per GFA, and the run-scope
/// histograms.  All writes are O(1) array operations; all reads are
/// deterministic functions of the recorded values.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRegistry {
    run: Scope,
    per_gfa: Vec<Scope>,
    hists: Vec<Histogram>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new(0)
    }
}

impl MetricsRegistry {
    /// A registry scoped to `n` GFAs.
    #[must_use]
    pub fn new(n: usize) -> MetricsRegistry {
        MetricsRegistry {
            run: Scope::new(),
            per_gfa: vec![Scope::new(); n],
            hists: vec![Histogram::default(); HistId::COUNT],
        }
    }

    /// Number of per-GFA scopes.
    #[must_use]
    pub fn gfas(&self) -> usize {
        self.per_gfa.len()
    }

    /// Bumps `counter` by one in GFA `gfa`'s scope and the run scope.
    pub fn inc(&mut self, gfa: usize, counter: Counter) {
        self.add(gfa, counter, 1);
    }

    /// Adds `by` to `counter` in GFA `gfa`'s scope and the run scope.
    pub fn add(&mut self, gfa: usize, counter: Counter, by: u64) {
        self.run.counters[counter as usize] += by;
        if let Some(scope) = self.per_gfa.get_mut(gfa) {
            scope.counters[counter as usize] += by;
        }
    }

    /// Adds `by` to float accumulator `fsum` in both scopes.
    pub fn add_f(&mut self, gfa: usize, fsum: FSum, by: f64) {
        self.run.fsums[fsum as usize] += by;
        if let Some(scope) = self.per_gfa.get_mut(gfa) {
            scope.fsums[fsum as usize] += by;
        }
    }

    /// Records one histogram sample (run scope).
    pub fn observe(&mut self, hist: HistId, v: f64) {
        self.hists[hist as usize].observe(v);
    }

    /// Run-scope value of `counter`.
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.run.counters[counter as usize]
    }

    /// GFA-scope value of `counter` (0 for an out-of-range GFA).
    #[must_use]
    pub fn gfa_counter(&self, gfa: usize, counter: Counter) -> u64 {
        self.per_gfa.get(gfa).map_or(0, |s| s.counters[counter as usize])
    }

    /// Run-scope value of `fsum`.
    #[must_use]
    pub fn fsum(&self, fsum: FSum) -> f64 {
        self.run.fsums[fsum as usize]
    }

    /// Run-scope histogram for `hist`.
    #[must_use]
    pub fn hist(&self, hist: HistId) -> &Histogram {
        &self.hists[hist as usize]
    }

    /// Panel quantiles of one histogram.
    #[must_use]
    pub fn quantiles(&self, hist: HistId) -> Quantiles {
        Quantiles::of(self.hist(hist))
    }

    /// The full percentile panel.
    #[must_use]
    pub fn percentiles(&self) -> PercentileSummary {
        PercentileSummary {
            wait: self.quantiles(HistId::JobWait),
            slowdown: self.quantiles(HistId::JobSlowdown),
            negotiation_messages: self.quantiles(HistId::NegotiationMessages),
            lookup_latency: self.quantiles(HistId::DirectoryLookupLatency),
            queue_depth: self.quantiles(HistId::QueueDepth),
        }
    }

    /// Serialises the registry as the `--metrics-out` JSON artifact:
    /// run-scope counters/accumulators, per-histogram percentile blocks,
    /// and the per-GFA counter table.  Key order is the declaration order
    /// of the id enums, so the artifact is byte-deterministic.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 1,\n  \"counters\": {\n");
        for (i, c) in Counter::ALL.iter().enumerate() {
            let _ = writeln!(
                out,
                "    \"{}\": {}{}",
                c.id(),
                self.counter(*c),
                if i + 1 < Counter::ALL.len() { "," } else { "" }
            );
        }
        out.push_str("  },\n  \"sums\": {\n");
        for (i, f) in FSum::ALL.iter().enumerate() {
            let _ = writeln!(
                out,
                "    \"{}\": {:.6}{}",
                f.id(),
                self.fsum(*f),
                if i + 1 < FSum::ALL.len() { "," } else { "" }
            );
        }
        out.push_str("  },\n  \"histograms\": {\n");
        for (i, h) in HistId::ALL.iter().enumerate() {
            let hist = self.hist(*h);
            let q = Quantiles::of(hist);
            let _ = writeln!(
                out,
                "    \"{}\": {{ \"count\": {}, \"sum\": {:.6}, \"min\": {:.6}, \"max\": {:.6}, \"p50\": {:.6}, \"p90\": {:.6}, \"p99\": {:.6} }}{}",
                h.id(),
                q.count,
                hist.sum(),
                hist.min(),
                hist.max(),
                q.p50,
                q.p90,
                q.p99,
                if i + 1 < HistId::ALL.len() { "," } else { "" }
            );
        }
        out.push_str("  },\n  \"per_gfa\": [\n");
        for (g, scope) in self.per_gfa.iter().enumerate() {
            out.push_str("    { ");
            let _ = write!(out, "\"gfa\": {g}");
            for c in Counter::ALL {
                let v = scope.counters[c as usize];
                if v != 0 {
                    let _ = write!(out, ", \"{}\": {v}", c.id());
                }
            }
            for f in FSum::ALL {
                let v = scope.fsums[f as usize];
                if v != 0.0 {
                    let _ = write!(out, ", \"{}\": {v:.6}", f.id());
                }
            }
            out.push_str(if g + 1 < self.per_gfa.len() { " },\n" } else { " }\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_midpoints_stay_within_relative_error() {
        for i in 0..4000 {
            let v = 1e-6 * 1.01f64.powi(i); // 1e-6 up past 1e11
            let mid = bucket_value(bucket_index(v));
            let err = (mid - v).abs() / v;
            assert!(err < 0.07, "value {v} mapped to {mid} (err {err})");
        }
    }

    #[test]
    fn quantiles_are_ordered_and_clamped() {
        let mut h = Histogram::default();
        for i in 1..=1000 {
            h.observe(f64::from(i));
        }
        let (p50, p90, p99) = (h.quantile(0.5), h.quantile(0.9), h.quantile(0.99));
        assert!(p50 <= p90 && p90 <= p99);
        assert!((p50 - 500.0).abs() / 500.0 < 0.07, "p50 {p50}");
        assert!((p90 - 900.0).abs() / 900.0 < 0.07, "p90 {p90}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.07, "p99 {p99}");
        assert!(p99 <= h.max());
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn zero_and_extreme_samples_land_somewhere() {
        let mut h = Histogram::default();
        h.observe(0.0);
        h.observe(-3.0);
        h.observe(1e-30);
        h.observe(1e30);
        assert_eq!(h.count(), 4);
        assert_eq!(h.quantile(0.25), 0.0);
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(Quantiles::of(&h), Quantiles::default());
    }

    #[test]
    fn per_gfa_counters_sum_to_the_run_scope() {
        let mut reg = MetricsRegistry::new(3);
        reg.inc(0, Counter::CacheHits);
        reg.add(1, Counter::CacheHits, 4);
        reg.add(2, Counter::CacheHits, 2);
        reg.add_f(1, FSum::JitterSeconds, 0.5);
        reg.add_f(2, FSum::JitterSeconds, 0.25);
        let per_gfa: u64 = (0..3).map(|g| reg.gfa_counter(g, Counter::CacheHits)).sum();
        assert_eq!(per_gfa, reg.counter(Counter::CacheHits));
        assert_eq!(reg.counter(Counter::CacheHits), 7);
        assert!((reg.fsum(FSum::JitterSeconds) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn json_artifact_has_every_id() {
        let mut reg = MetricsRegistry::new(2);
        reg.inc(0, Counter::JobsCompleted);
        reg.observe(HistId::JobWait, 12.5);
        let json = reg.to_json();
        for c in Counter::ALL {
            assert!(json.contains(c.id()), "missing {}", c.id());
        }
        for h in HistId::ALL {
            assert!(json.contains(h.id()), "missing {}", h.id());
        }
        for f in FSum::ALL {
            assert!(json.contains(f.id()), "missing {}", f.id());
        }
        assert!(crate::json::parse(&json).is_ok(), "artifact must be valid JSON");
    }
}
