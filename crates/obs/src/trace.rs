//! Causal span collection and Chrome Trace Format export.
//!
//! [`SpanCollector`] is the span-aware [`TraceSink`] implementation: the
//! federation model pushes completed [`SpanRecord`]s (job lifecycle,
//! negotiation round-trips, directory probes, execution intervals) and
//! [`FlowRecord`]s (cross-GFA dispatch/completion arrows keyed by envelope
//! sequence number), and the collector renders them as a Chrome Trace
//! Format JSON document loadable in Perfetto or `chrome://tracing`.
//!
//! Mapping: one *process* per GFA (`pid` = GFA index), one *thread* per
//! [`SpanTrack`] (`tid` 0 = lifecycle, 1 = negotiation, 2 = directory,
//! 3 = execution).  Timestamps are simulated seconds scaled to
//! microseconds, so they are bit-deterministic across hosts.  The exporter
//! sorts events by `(pid, tid, ts)` before serialising, which makes
//! per-track timestamp monotonicity a structural property of the artifact
//! (the trace-validity test asserts exactly that).

use std::fmt::Write as _;

use grid_des::{FlowRecord, SpanRecord, SpanTrack, TraceRecord, TraceSink};

use crate::json::esc;

/// Microseconds per simulated second (Chrome Trace `ts`/`dur` unit).
const US_PER_SEC: f64 = 1e6;

/// Chrome Trace event phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// `ph: "X"` — a complete (duration) event.
    Complete,
    /// `ph: "s"` — a flow start.
    FlowStart,
    /// `ph: "f"` (with `bp: "e"`) — a flow finish bound to the enclosing
    /// slice's end.
    FlowFinish,
}

/// One buffered trace event, pre-rendered to Chrome Trace fields.
#[derive(Debug, Clone)]
struct ChromeEvent {
    pid: u64,
    tid: u64,
    ts_us: f64,
    dur_us: f64,
    phase: Phase,
    name: &'static str,
    /// Flow id (flow phases only).
    id: u64,
    /// Free-form `args.detail` string (complete events only).
    detail: String,
}

/// Buffers spans and flows during a run and exports them as Chrome Trace
/// JSON afterwards.  Purely accumulative: nothing here can observe or
/// influence simulation state.
#[derive(Debug, Default)]
pub struct SpanCollector {
    events: Vec<ChromeEvent>,
}

impl SpanCollector {
    /// An empty collector.
    #[must_use]
    pub fn new() -> SpanCollector {
        SpanCollector::default()
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the buffered events as a Chrome Trace Format document.
    ///
    /// Events are sorted by `(pid, tid, ts)` first, so within every
    /// `(pid, tid)` track the emitted timestamps are non-decreasing, and
    /// per-track metadata (`process_name` = `gfa-<i>`, `thread_name` = the
    /// track label) precedes the data events.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        let mut sorted: Vec<&ChromeEvent> = self.events.iter().collect();
        sorted.sort_by(|a, b| {
            (a.pid, a.tid)
                .cmp(&(b.pid, b.tid))
                .then(a.ts_us.total_cmp(&b.ts_us))
        });

        // Deterministic metadata: every (pid, tid) pair that carries data.
        let mut tracks: Vec<(u64, u64)> = sorted.iter().map(|e| (e.pid, e.tid)).collect();
        tracks.dedup();

        let mut out = String::from("{\n\"traceEvents\": [\n");
        let mut first = true;
        let mut push = |line: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&line);
        };
        let mut seen_pids: Vec<u64> = Vec::new();
        for &(pid, tid) in &tracks {
            if !seen_pids.contains(&pid) {
                seen_pids.push(pid);
                push(
                    format!(
                        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"gfa-{pid}\"}}}}"
                    ),
                    &mut out,
                );
            }
            let label = [
                SpanTrack::Lifecycle,
                SpanTrack::Negotiation,
                SpanTrack::Directory,
                SpanTrack::Execution,
            ]
            .iter()
            .find(|t| t.tid() == tid)
            .map_or("track", |t| t.label());
            push(
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{label}\"}}}}"
                ),
                &mut out,
            );
        }
        for event in sorted {
            let mut line = String::new();
            let _ = write!(
                line,
                "{{\"name\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{:.3}",
                event.name, event.pid, event.tid, event.ts_us
            );
            match event.phase {
                Phase::Complete => {
                    let _ = write!(line, ",\"ph\":\"X\",\"dur\":{:.3}", event.dur_us);
                    if !event.detail.is_empty() {
                        let _ = write!(line, ",\"args\":{{\"detail\":\"{}\"}}", esc(&event.detail));
                    }
                }
                Phase::FlowStart => {
                    let _ = write!(line, ",\"ph\":\"s\",\"cat\":\"federation\",\"id\":{}", event.id);
                }
                Phase::FlowFinish => {
                    let _ = write!(
                        line,
                        ",\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"federation\",\"id\":{}",
                        event.id
                    );
                }
            }
            line.push('}');
            push(line, &mut out);
        }
        out.push_str("\n]\n}\n");
        out
    }
}

impl TraceSink for SpanCollector {
    fn record(&mut self, _record: TraceRecord) {
        // Raw engine events are not collected: the causal spans carry the
        // model-level story, and per-event records would dwarf them.
    }

    fn span(&mut self, record: SpanRecord) {
        let start = record.start.as_secs() * US_PER_SEC;
        let end = record.end.as_secs() * US_PER_SEC;
        self.events.push(ChromeEvent {
            pid: record.gfa as u64,
            tid: record.track.tid(),
            ts_us: start,
            dur_us: (end - start).max(0.0),
            phase: Phase::Complete,
            name: record.name,
            id: 0,
            detail: record.detail,
        });
    }

    fn flow(&mut self, record: FlowRecord) {
        self.events.push(ChromeEvent {
            pid: record.gfa as u64,
            tid: record.track.tid(),
            ts_us: record.time.as_secs() * US_PER_SEC,
            dur_us: 0.0,
            phase: if record.start { Phase::FlowStart } else { Phase::FlowFinish },
            name: "flow",
            id: record.id,
            detail: String::new(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use grid_des::SimTime;

    fn span(gfa: usize, track: SpanTrack, name: &'static str, t0: f64, t1: f64) -> SpanRecord {
        SpanRecord {
            gfa,
            track,
            name,
            start: SimTime::new(t0),
            end: SimTime::new(t1),
            detail: format!("job {gfa}:{name}"),
        }
    }

    #[test]
    fn export_is_valid_json_with_monotone_tracks() {
        let mut collector = SpanCollector::new();
        // Deliberately out of order within a track.
        collector.span(span(1, SpanTrack::Lifecycle, "job", 50.0, 60.0));
        collector.span(span(0, SpanTrack::Lifecycle, "job", 10.0, 40.0));
        collector.span(span(0, SpanTrack::Lifecycle, "job", 5.0, 8.0));
        collector.span(span(0, SpanTrack::Directory, "probe", 12.0, 12.5));
        collector.flow(FlowRecord {
            id: 9,
            gfa: 0,
            track: SpanTrack::Negotiation,
            time: SimTime::new(20.0),
            start: true,
        });
        collector.flow(FlowRecord {
            id: 9,
            gfa: 1,
            track: SpanTrack::Negotiation,
            time: SimTime::new(21.0),
            start: false,
        });
        let doc = collector.to_chrome_trace();
        let parsed = parse(&doc).expect("chrome trace must parse");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        // Per-(pid, tid) timestamps must be non-decreasing.
        let mut last: Vec<((u64, u64), f64)> = Vec::new();
        for event in events {
            let ph = event.get("ph").and_then(Json::as_str).expect("ph");
            assert!(matches!(ph, "X" | "s" | "f" | "M"), "unexpected phase {ph}");
            if ph == "M" {
                continue;
            }
            let pid = event.get("pid").and_then(Json::as_f64).expect("pid") as u64;
            let tid = event.get("tid").and_then(Json::as_f64).expect("tid") as u64;
            let ts = event.get("ts").and_then(Json::as_f64).expect("ts");
            match last.iter_mut().find(|(k, _)| *k == (pid, tid)) {
                Some((_, prev)) => {
                    assert!(ts >= *prev, "track ({pid},{tid}) went backwards: {ts} < {prev}");
                    *prev = ts;
                }
                None => last.push(((pid, tid), ts)),
            }
        }
        // Both flow endpoints carry the same id.
        let ids: Vec<f64> = events
            .iter()
            .filter(|e| matches!(e.get("ph").and_then(Json::as_str), Some("s" | "f")))
            .map(|e| e.get("id").and_then(Json::as_f64).unwrap())
            .collect();
        assert_eq!(ids, vec![9.0, 9.0]);
    }

    #[test]
    fn empty_collector_exports_an_empty_event_array() {
        let collector = SpanCollector::new();
        let doc = collector.to_chrome_trace();
        let parsed = parse(&doc).expect("parse");
        assert_eq!(parsed.get("traceEvents").and_then(Json::as_arr).map(<[Json]>::len), Some(0));
        assert!(collector.is_empty());
    }
}
