//! # grid-federation — facade crate
//!
//! Re-exports the whole Grid-Federation reproduction workspace behind a
//! single dependency, so downstream users can write
//! `grid_federation::core::run_federation(..)` instead of depending on each
//! member crate individually.  See the workspace `README.md` for the
//! architecture overview and `DESIGN.md` / `EXPERIMENTS.md` for the
//! paper-reproduction details.
//!
//! | Module | Workspace crate |
//! |---|---|
//! | [`des`] | `grid-des` — deterministic discrete-event engine |
//! | [`obs`] | `grid-obs` — metrics registry, span tracing, self-profiling |
//! | [`workload`] | `grid-workload` — jobs, SWF traces, synthetic generators |
//! | [`cluster`] | `grid-cluster` — resources, cost model, LRMS policies |
//! | [`directory`] | `grid-directory` — shared federation directory |
//! | [`core`] | `grid-federation-core` — GFAs, economy, DBC scheduling |
//! | [`baselines`] | `grid-baselines` — broadcast / flock comparators |
//! | [`experiments`] | `grid-experiments` — the paper's experiments 1–5 |

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub use grid_baselines as baselines;
pub use grid_cluster as cluster;
pub use grid_des as des;
pub use grid_directory as directory;
pub use grid_experiments as experiments;
pub use grid_federation_core as core;
pub use grid_obs as obs;
pub use grid_workload as workload;

/// Convenience prelude bringing the most commonly used types into scope.
pub mod prelude {
    pub use grid_cluster::{LocalScheduler, ResourceSpec};
    pub use grid_directory::DirectoryBackend;
    pub use grid_federation_core::federation::{
        run_federation, FederationBuilder, FederationConfig, LrmsKind, SchedulingMode,
    };
    pub use grid_federation_core::{ChargingPolicy, ExecutionOutcome, FederationReport, JobRecord};
    pub use grid_workload::{Job, JobId, PopulationProfile, Qos, Strategy, UserId};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_re_exports_work_end_to_end() {
        let resources = vec![
            ResourceSpec::new("a", 16, 500.0, 1.0, 2.0),
            ResourceSpec::new("b", 16, 1_000.0, 1.0, 4.0),
        ];
        let mut job = Job::from_runtime(
            JobId { origin: 0, seq: 0 },
            UserId { origin: 0, local: 0 },
            0.0,
            4,
            100.0,
            500.0,
            0.1,
        );
        job.qos.strategy = Strategy::Oft;
        let report = run_federation(
            resources,
            vec![vec![job], vec![]],
            FederationConfig::with_mode(SchedulingMode::Economy),
        );
        assert_eq!(report.jobs.len(), 1);
        assert!(report.jobs[0].was_accepted());
    }
}
