//! Cross-crate integration tests exercising the public API end to end:
//! SWF traces → jobs → federation runs → reports, scheduling-mode and
//! LRMS-policy comparisons, and the related-work baselines on identical
//! workloads.

use grid_baselines::{run_broadcast, run_flock, BroadcastConfig, FlockConfig, MigrationPolicy};
use grid_cluster::{paper_resources, ResourceSpec};
use grid_federation_core::federation::{
    run_federation, FederationConfig, LrmsKind, SchedulingMode,
};
use grid_federation_core::ChargingPolicy;
use grid_workload::{
    Job, JobId, PopulationProfile, Strategy, SwfTrace, SyntheticWorkloadConfig, UserId,
    UserPopulation,
};

/// Builds a small two-resource federation with an oversubscribed origin.
fn small_setup() -> (Vec<ResourceSpec>, Vec<Vec<Job>>) {
    let resources = vec![
        ResourceSpec::new("small-origin", 16, 600.0, 1.0, 2.4),
        ResourceSpec::new("big-helper", 256, 900.0, 2.0, 3.6),
    ];
    let mut cfg = SyntheticWorkloadConfig::new(0, "small-origin");
    cfg.total_jobs = 80;
    cfg.max_processors = 16;
    cfg.origin_mips = 600.0;
    cfg.offered_load = 1.4;
    cfg.duration = 43_200.0;
    cfg.max_runtime = 0.2 * cfg.duration;
    cfg.user_count = 8;
    cfg.seed = 99;
    let mut jobs = cfg.generate().into_jobs();
    UserPopulation::new(0, 8, PopulationProfile::new(50), 3).apply(&mut jobs);
    (resources, vec![jobs, Vec::new()])
}

#[test]
fn swf_roundtrip_feeds_the_federation() {
    // Generate → serialise → parse → schedule, touching every crate.
    let resources: Vec<ResourceSpec> = paper_resources().into_iter().map(|r| r.spec).collect();
    let mut cfg = SyntheticWorkloadConfig::new(0, "CTC SP2");
    cfg.total_jobs = 60;
    cfg.max_processors = resources[0].processors;
    cfg.origin_mips = resources[0].mips;
    cfg.offered_load = 0.8;
    cfg.duration = 43_200.0;
    cfg.seed = 5;
    let workload = cfg.generate();

    let records: Vec<grid_workload::SwfRecord> = workload
        .jobs()
        .iter()
        .enumerate()
        .map(|(i, j)| grid_workload::SwfRecord {
            job_number: i as i64,
            submit_time: j.submit,
            wait_time: -1.0,
            run_time: j.compute_time(resources[0].mips) + j.comm_overhead,
            allocated_processors: i64::from(j.processors),
            requested_processors: i64::from(j.processors),
            requested_time: -1.0,
            status: 1,
            user_id: j.user.local as i64,
            group_id: 1,
            queue: 0,
        })
        .collect();
    let swf = SwfTrace {
        comments: vec!["roundtrip".into()],
        records,
    };
    let text = swf.to_swf_string();
    let parsed = SwfTrace::parse(&text).expect("roundtrip parse");
    let jobs = parsed.to_jobs(0, resources[0].mips, resources[0].processors, 0.10);
    assert_eq!(jobs.len(), 60);

    let mut workloads: Vec<Vec<Job>> = vec![Vec::new(); resources.len()];
    workloads[0] = jobs;
    let report = run_federation(
        resources,
        workloads,
        FederationConfig::with_mode(SchedulingMode::Economy),
    );
    assert_eq!(report.jobs.len(), 60);
    assert!(report.mean_acceptance_rate() > 90.0);
}

#[test]
fn federation_beats_independent_on_an_overloaded_origin() {
    let (resources, workloads) = small_setup();
    let independent = run_federation(
        resources.clone(),
        workloads.clone(),
        FederationConfig::with_mode(SchedulingMode::Independent),
    );
    let no_economy = run_federation(
        resources.clone(),
        workloads.clone(),
        FederationConfig::with_mode(SchedulingMode::FederationNoEconomy),
    );
    let economy = run_federation(
        resources,
        workloads,
        FederationConfig::with_mode(SchedulingMode::Economy),
    );
    assert!(no_economy.mean_acceptance_rate() > independent.mean_acceptance_rate());
    assert!(economy.mean_acceptance_rate() > independent.mean_acceptance_rate());
    // The helper resource earns incentive only when it actually executes work.
    assert!(economy.resources[1].remote_jobs_processed > 0);
    assert!(economy.resources[1].incentive > 0.0);
    assert!(economy.bank.is_balanced());
}

#[test]
fn easy_backfilling_never_accepts_fewer_jobs_than_fcfs_here() {
    let (resources, workloads) = small_setup();
    let fcfs = run_federation(
        resources.clone(),
        workloads.clone(),
        FederationConfig {
            lrms: LrmsKind::SpaceSharedFcfs,
            ..FederationConfig::with_mode(SchedulingMode::Independent)
        },
    );
    let easy = run_federation(
        resources,
        workloads,
        FederationConfig {
            lrms: LrmsKind::EasyBackfilling,
            ..FederationConfig::with_mode(SchedulingMode::Independent)
        },
    );
    let accepted = |r: &grid_federation_core::FederationReport| {
        r.resources.iter().map(|m| m.accepted).sum::<usize>()
    };
    assert!(
        accepted(&easy) + 2 >= accepted(&fcfs),
        "EASY ({}) should not accept clearly fewer jobs than FCFS ({})",
        accepted(&easy),
        accepted(&fcfs)
    );
}

#[test]
fn charging_policy_changes_magnitude_but_not_allocation_direction() {
    let (resources, workloads) = small_setup();
    let per_second = run_federation(
        resources.clone(),
        workloads.clone(),
        FederationConfig {
            charging: ChargingPolicy::PerCpuSecond,
            ..FederationConfig::with_mode(SchedulingMode::Economy)
        },
    );
    let per_kilo_mi = run_federation(
        resources,
        workloads,
        FederationConfig {
            charging: ChargingPolicy::PerKiloMi,
            ..FederationConfig::with_mode(SchedulingMode::Economy)
        },
    );
    // Accounting magnitudes differ (the ratio is µ·p/1000 per job, so the two
    // conventions can never agree except by coincidence)…
    let ratio = per_kilo_mi.total_incentive() / per_second.total_incentive();
    assert!(
        (ratio - 1.0).abs() > 0.2,
        "the two charging conventions should produce clearly different volumes (ratio {ratio:.3})"
    );
    // …but both conserve currency and accept a similar share of jobs.
    assert!(per_second.bank.is_balanced());
    assert!(per_kilo_mi.bank.is_balanced());
    let diff = (per_second.mean_acceptance_rate() - per_kilo_mi.mean_acceptance_rate()).abs();
    assert!(diff < 10.0, "acceptance rates diverged by {diff}");
}

#[test]
fn baselines_run_on_the_same_workload_as_the_federation() {
    let (resources, workloads) = small_setup();
    // Fabricate QoS exactly as the federation would, so the comparison is fair.
    let mut workloads_with_qos = workloads.clone();
    for (i, jobs) in workloads_with_qos.iter_mut().enumerate() {
        ChargingPolicy::PerKiloMi.fabricate_qos_all(jobs, &resources[i]);
    }

    let broadcast = run_broadcast(
        &resources,
        &workloads_with_qos,
        &BroadcastConfig {
            policy: MigrationPolicy::SenderInitiated,
            ..BroadcastConfig::default()
        },
    );
    let flock = run_flock(&resources, &workloads_with_qos, &FlockConfig::default());
    let federation = run_federation(
        resources,
        workloads,
        FederationConfig::with_mode(SchedulingMode::Economy),
    );

    // All three mechanisms accept a meaningful share of the workload.
    assert!(broadcast.total_accepted > 0);
    assert!(flock.total_accepted > 0);
    assert!(federation.mean_acceptance_rate() > 50.0);
    // The broadcast baseline must not accept more jobs than physically
    // migrated + processed locally (sanity of the shared driver).
    let b0 = &broadcast.resources[0];
    assert_eq!(b0.accepted, b0.processed_locally + b0.migrated);
}

#[test]
fn reports_are_reproducible_across_identical_runs() {
    let (resources, workloads) = small_setup();
    let run = |seed: u64| {
        run_federation(
            resources.clone(),
            workloads.clone(),
            FederationConfig {
                seed,
                ..FederationConfig::with_mode(SchedulingMode::Economy)
            },
        )
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.jobs.len(), b.jobs.len());
    assert_eq!(a.messages.total_messages(), b.messages.total_messages());
    assert_eq!(a.sim_end, b.sim_end);
    for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
        assert_eq!(ja.id, jb.id);
        assert_eq!(ja.messages, jb.messages);
        assert_eq!(ja.was_accepted(), jb.was_accepted());
    }
}

#[test]
fn oft_and_ofc_pick_the_expected_poles_on_idle_clusters() {
    // Three idle clusters with clearly separated price/speed: an OFC job must
    // land on the cheapest, an OFT job on the fastest.
    let resources = vec![
        ResourceSpec::new("cheapest", 64, 500.0, 1.0, 1.0),
        ResourceSpec::new("middle", 64, 750.0, 1.0, 2.0),
        ResourceSpec::new("fastest", 64, 1_000.0, 1.0, 4.0),
    ];
    let make_job = |strategy| {
        let mut j = Job::from_runtime(
            JobId { origin: 1, seq: 0 },
            UserId { origin: 1, local: 0 },
            0.0,
            8,
            600.0,
            750.0,
            0.10,
        );
        j.qos.strategy = strategy;
        j
    };
    for (strategy, expected) in [(Strategy::Ofc, 0usize), (Strategy::Oft, 2usize)] {
        let report = run_federation(
            resources.clone(),
            vec![Vec::new(), vec![make_job(strategy)], Vec::new()],
            FederationConfig::with_mode(SchedulingMode::Economy),
        );
        match report.jobs[0].outcome {
            grid_federation_core::ExecutionOutcome::Completed { executed_on, .. } => {
                assert_eq!(executed_on, expected, "{strategy} chose the wrong pole");
            }
            grid_federation_core::ExecutionOutcome::Rejected => panic!("job was rejected"),
        }
    }
}
