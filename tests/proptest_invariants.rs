//! Property-based integration tests over randomly generated federations.
//!
//! For arbitrary (but small) federations and workloads, the following
//! invariants of the Grid-Federation must hold:
//!
//! * the GridBank conserves currency and its volume equals the total owner
//!   incentive,
//! * every accepted job finishes no later than its absolute deadline,
//! * migrated jobs and remotely processed jobs are the same multiset (counted
//!   per run),
//! * message accounting is internally consistent (per-origin totals equal the
//!   global total equal the per-job totals),
//! * utilizations stay within `[0, 1]`,
//! * the federation never accepts fewer jobs than the same clusters running
//!   independently.

use grid_cluster::ResourceSpec;
use grid_federation_core::federation::{run_federation, FederationConfig, SchedulingMode};
use grid_workload::{Job, JobId, Strategy as QosStrategy, UserId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct JobSpec {
    submit: f64,
    procs_fraction: f64,
    runtime: f64,
    oft: bool,
}

fn job_spec_strategy() -> impl Strategy<Value = JobSpec> {
    (
        0.0f64..20_000.0,
        0.05f64..1.0,
        60.0f64..7_200.0,
        proptest::bool::ANY,
    )
        .prop_map(|(submit, procs_fraction, runtime, oft)| JobSpec {
            submit,
            procs_fraction,
            runtime,
            oft,
        })
}

#[derive(Debug, Clone)]
struct ClusterSpec {
    processors: u32,
    mips: f64,
    bandwidth: f64,
}

fn cluster_strategy() -> impl Strategy<Value = ClusterSpec> {
    (8u32..256, 400.0f64..1_200.0, 1.0f64..4.0).prop_map(|(processors, mips, bandwidth)| ClusterSpec {
        processors,
        mips,
        bandwidth,
    })
}

fn build_federation(
    clusters: &[ClusterSpec],
    jobs: &[JobSpec],
) -> (Vec<ResourceSpec>, Vec<Vec<Job>>) {
    let max_mips = clusters.iter().map(|c| c.mips).fold(1.0f64, f64::max);
    let resources: Vec<ResourceSpec> = clusters
        .iter()
        .enumerate()
        .map(|(i, c)| {
            ResourceSpec::new(
                &format!("cluster-{i}"),
                c.processors,
                c.mips,
                c.bandwidth,
                5.3 / max_mips * c.mips,
            )
        })
        .collect();
    let mut workloads: Vec<Vec<Job>> = vec![Vec::new(); resources.len()];
    for (i, spec) in jobs.iter().enumerate() {
        let origin = i % resources.len();
        let res = &resources[origin];
        let procs = ((f64::from(res.processors) * spec.procs_fraction).ceil() as u32).clamp(1, res.processors);
        let mut job = Job::from_runtime(
            JobId {
                origin,
                seq: workloads[origin].len(),
            },
            UserId {
                origin,
                local: i % 5,
            },
            spec.submit,
            procs,
            spec.runtime,
            res.mips,
            0.10,
        );
        job.qos.strategy = if spec.oft { QosStrategy::Oft } else { QosStrategy::Ofc };
        workloads[origin].push(job);
    }
    // Jobs must be handed over sorted by submission per origin (the builder
    // schedules them as timers, so order is not strictly required, but keep
    // the generated traces realistic).
    for w in &mut workloads {
        w.sort_by(|a, b| a.submit.total_cmp(&b.submit));
        for (seq, job) in w.iter_mut().enumerate() {
            job.id.seq = seq;
        }
    }
    (resources, workloads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn federation_invariants_hold(
        clusters in proptest::collection::vec(cluster_strategy(), 2..5),
        jobs in proptest::collection::vec(job_spec_strategy(), 1..60),
        seed in any::<u64>(),
    ) {
        let (resources, workloads) = build_federation(&clusters, &jobs);
        let total_jobs: usize = workloads.iter().map(Vec::len).sum();

        let economy = run_federation(
            resources.clone(),
            workloads.clone(),
            FederationConfig { seed, ..FederationConfig::with_mode(SchedulingMode::Economy) },
        );
        let independent = run_federation(
            resources,
            workloads,
            FederationConfig { seed, ..FederationConfig::with_mode(SchedulingMode::Independent) },
        );

        // Every job is accounted for exactly once.
        prop_assert_eq!(economy.jobs.len(), total_jobs);
        prop_assert_eq!(independent.jobs.len(), total_jobs);

        // Bank conservation and incentive consistency.
        prop_assert!(economy.bank.is_balanced());
        prop_assert!((economy.bank.total_volume() - economy.total_incentive()).abs() < 1e-6);

        // Deadlines of accepted jobs are honoured.
        for job in economy.jobs.iter().filter(|j| j.was_accepted()) {
            let response = job.response_time().expect("accepted job has a response time");
            prop_assert!(response <= job.deadline + 1e-6,
                "job {} missed its deadline: {} > {}", job.id, response, job.deadline);
        }

        // Migrated == remotely processed, summed over the federation.
        let migrated: usize = economy.resources.iter().map(|r| r.migrated).sum();
        let remote: usize = economy.resources.iter().map(|r| r.remote_jobs_processed).sum();
        prop_assert_eq!(migrated, remote);

        // Message ledger consistency.
        let per_origin_local: u64 = (0..economy.resources.len())
            .map(|i| economy.messages.gfa(i).local)
            .sum();
        let per_job_total: u64 = economy
            .messages
            .per_job()
            .iter()
            .map(|(_, m)| u64::from(*m))
            .sum();
        prop_assert_eq!(per_origin_local, economy.messages.total_messages());
        prop_assert_eq!(per_job_total, economy.messages.total_messages());
        prop_assert_eq!(economy.messages.per_job().len(), total_jobs);

        // Utilizations are proper fractions.
        for r in economy.resources.iter().chain(independent.resources.iter()) {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&r.utilization));
        }

        // Acceptance accounting is exact in both modes, and a non-empty
        // feasible workload is never rejected wholesale by the federation.
        // (Per-instance the federation may accept one or two fewer jobs than
        // isolation — remote jobs can crowd a local queue, the effect the
        // paper describes for users of "popular" resources — so the aggregate
        // ≥ claim is checked on the calibrated workload in
        // tests/paper_claims.rs instead of here.)
        let fed_accepted: usize = economy.resources.iter().map(|r| r.accepted).sum();
        let fed_rejected: usize = economy.resources.iter().map(|r| r.rejected).sum();
        let ind_accepted: usize = independent.resources.iter().map(|r| r.accepted).sum();
        let ind_rejected: usize = independent.resources.iter().map(|r| r.rejected).sum();
        prop_assert_eq!(fed_accepted + fed_rejected, total_jobs);
        prop_assert_eq!(ind_accepted + ind_rejected, total_jobs);
        if ind_accepted > 0 {
            prop_assert!(fed_accepted > 0,
                "isolation accepted {} jobs but the federation accepted none", ind_accepted);
        }

        // Independent mode never migrates and never messages.
        prop_assert!(independent.jobs.iter().all(|j| !j.was_migrated()));
        prop_assert_eq!(independent.messages.total_messages(), 0);
    }
}
