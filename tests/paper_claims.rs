//! Integration test: the paper's headline claims hold on the reproduction.
//!
//! These tests run the actual experiment pipeline (on the reduced "quick"
//! workload so the suite stays fast in debug builds) and check the
//! *directional* results the paper reports:
//!
//! * federating the clusters raises the average job acceptance rate and
//!   utilization (Experiment 1 vs 2),
//! * an all-OFT population generates more total incentive and more messages
//!   than an all-OFC population (Experiments 3–4),
//! * message complexity per job grows slowly (sub-linearly in the workload)
//!   with the federation size (Experiment 5),
//! * every resource owner earns incentive at the recommended 70 % OFC /
//!   30 % OFT mix.

use grid_experiments::exp5::Stat;
use grid_experiments::summary::HeadlineClaims;
use grid_experiments::workloads::WorkloadOptions;
use grid_experiments::{exp1, exp2, exp3, exp4, exp5};
use grid_workload::PopulationProfile;

fn options() -> WorkloadOptions {
    WorkloadOptions::quick()
}

#[test]
fn federation_raises_acceptance_and_utilization() {
    let result = exp2::run(&options());
    let without = result.independent.mean_acceptance_rate();
    let with = result.federated.mean_acceptance_rate();
    assert!(
        with > without,
        "federation should raise mean acceptance ({without:.2} % -> {with:.2} %)"
    );
    let util_without = result.independent.mean_utilization_percent();
    let util_with = result.federated.mean_utilization_percent();
    assert!(
        util_with > util_without,
        "federation should raise mean utilization ({util_without:.2} % -> {util_with:.2} %)"
    );
    // Load sharing: every migrated job is processed remotely somewhere.
    let migrated: usize = result.federated.resources.iter().map(|r| r.migrated).sum();
    let remote: usize = result
        .federated
        .resources
        .iter()
        .map(|r| r.remote_jobs_processed)
        .sum();
    assert_eq!(migrated, remote);
    assert!(migrated > 0);
}

#[test]
fn table2_and_table3_regenerate_with_paper_shapes() {
    let e1 = exp1::run(&options());
    let t2 = exp1::table2(&e1);
    assert_eq!(t2.len(), 8);
    let e2 = exp2::run(&options());
    let t3 = exp2::table3(&e2);
    assert_eq!(t3.len(), 8);
    assert_eq!(exp2::figure2a(&e2).len(), 8);
    assert_eq!(exp2::figure2b(&e2).len(), 8);
    // CSV renderings are well-formed (header + 8 rows).
    assert_eq!(t2.to_csv().lines().count(), 9);
    assert_eq!(t3.to_csv().lines().count(), 9);
}

#[test]
fn economy_claims_hold_directionally() {
    let e2 = exp2::run(&options());
    let sweep = exp3::run_sweep(
        &options(),
        &[
            PopulationProfile::new(0),
            PopulationProfile::new(30),
            PopulationProfile::new(100),
        ],
    );
    let claims = HeadlineClaims::extract(&e2, &sweep);
    assert!(
        claims.directional_claims_hold(),
        "directional claims failed: {claims:#?}"
    );

    // At the recommended 70/30 mix the incentive is spread over at least as
    // many owners as under the all-OFC population (at full scale *every*
    // owner earns incentive — see EXPERIMENTS.md; the reduced quick trace can
    // leave one small resource idle).
    let earning = |report: &grid_federation_core::FederationReport| {
        report.resources.iter().filter(|r| r.incentive > 0.0).count()
    };
    let recommended = sweep.report_for(30).unwrap();
    let all_ofc = sweep.report_for(0).unwrap();
    assert!(
        earning(recommended) >= earning(all_ofc),
        "the 70/30 mix should spread incentive over at least as many owners \
         as all-OFC ({} vs {})",
        earning(recommended),
        earning(all_ofc)
    );
    assert!(earning(recommended) >= 6, "most owners should earn incentive at 70/30");

    // Message figures are consistent with the ledger.
    let fig9c = exp4::figure9c(&sweep);
    assert_eq!(fig9c.len(), 3);
    for (profile, report) in sweep.profiles.iter().zip(&sweep.reports) {
        let row = fig9c
            .rows
            .iter()
            .find(|r| r[0] == profile.label())
            .expect("profile row present");
        assert_eq!(row[1], report.messages.total_messages().to_string());
    }
}

#[test]
fn qos_constraints_are_respected_by_accepted_jobs() {
    let sweep = exp3::run_sweep(&options(), &[PopulationProfile::new(50)]);
    let report = &sweep.reports[0];
    for job in report.jobs.iter().filter(|j| j.was_accepted()) {
        let response = job.response_time().unwrap();
        assert!(
            response <= job.deadline + 1e-6,
            "job {} finished after its deadline ({response:.1} > {:.1})",
            job.id,
            job.deadline
        );
    }
    // OFT users never exceed their budget (their candidate filter enforces it).
    for job in report
        .jobs
        .iter()
        .filter(|j| j.was_accepted() && j.strategy == grid_workload::Strategy::Oft)
    {
        assert!(
            job.cost_paid().unwrap() <= job.budget + 1e-6,
            "OFT job {} exceeded its budget",
            job.id
        );
    }
    // The GridBank balances and matches the total incentive.
    assert!(report.bank.is_balanced());
    assert!((report.bank.total_volume() - report.total_incentive()).abs() < 1e-6);
}

#[test]
fn message_complexity_grows_slowly_with_system_size() {
    let sweep = exp5::run_sweep(
        &options(),
        &[10, 20, 40],
        &[PopulationProfile::new(0), PopulationProfile::new(100)],
    );
    for (pi, profile) in sweep.profiles.iter().enumerate() {
        let per_job: Vec<f64> = sweep
            .sizes
            .iter()
            .enumerate()
            .map(|(si, _)| {
                let (_, avg, _) = sweep.reports[si][pi].messages.per_job_summary();
                avg
            })
            .collect();
        // Growing the federation 4x should grow the per-job message count by
        // clearly less than 8x (the paper argues the growth is "relatively
        // slow" compared to the system size).
        assert!(
            per_job[2] < per_job[0] * 8.0,
            "profile {}: per-job messages {per_job:?} grew too fast",
            profile.label()
        );
        assert!(per_job[0] >= 2.0);
        // Figures render with one row per size.
        assert_eq!(exp5::figure10(&sweep, Stat::Avg).len(), 3);
        assert_eq!(exp5::figure11(&sweep, Stat::Max).len(), 3);
    }
}
