//! Differential test between the directory backends on the calibrated paper
//! workload: for the same seed and workload, the `Ideal`, `Chord` and
//! `Maan` backends must produce **identical** job outcomes
//! (accepted/dropped, completion times, GridBank balances) and differ only
//! in directory/publish message counts and the simulated lookup latency
//! those messages account.

use grid_experiments::workloads::{paper_workloads, WorkloadOptions};
use grid_federation_core::federation::{run_federation, FederationConfig, SchedulingMode};
use grid_federation_core::{DirectoryBackend, FederationReport};
use grid_workload::PopulationProfile;

fn run_with(backend: DirectoryBackend) -> FederationReport {
    let options = WorkloadOptions::quick();
    let setup = paper_workloads(PopulationProfile::new(50), &options);
    run_federation(
        setup.resources,
        setup.workloads,
        FederationConfig {
            mode: SchedulingMode::Economy,
            seed: options.seed,
            utilization_horizon: Some(options.duration),
            directory: backend,
            ..FederationConfig::default()
        },
    )
}

#[test]
fn backends_differ_only_in_directory_traffic() {
    let ideal = run_with(DirectoryBackend::Ideal);
    assert_eq!(ideal.backend, DirectoryBackend::Ideal);
    assert!(!ideal.jobs.is_empty());
    assert!(
        (ideal.directory_avg_route_messages - 3.0).abs() < 1e-9,
        "ideal backend must charge exactly the modelled routing cost"
    );
    // Lookup latency follows the message counts (0.05 s per hop by default).
    assert!((ideal.messages.directory_seconds()
        - ideal.messages.directory_messages() as f64 * 0.05)
        .abs()
        < 1e-6);
    assert_eq!(ideal.messages.publish_messages(), 0, "central stores publish for free");

    for backend in [DirectoryBackend::Chord, DirectoryBackend::Maan] {
        let other = run_with(backend);
        assert_eq!(other.backend, backend);

        // Digest-first: the audit ledger's outcome chains commit to every
        // job record and Grid-Dollar transfer, so one u64 comparison states
        // the whole conformance claim; the field-by-field oracle below is
        // kept because its failures localise a divergence.
        assert_eq!(
            ideal.digest.outcomes, other.digest.outcomes,
            "{backend:?}: outcome digest diverged from the ideal backend"
        );

        // Job outcomes are bitwise-identical: same records in the same
        // order, modulo the directory_messages field.
        assert_eq!(ideal.jobs.len(), other.jobs.len());
        for (a, b) in ideal.jobs.iter().zip(&other.jobs) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.outcome, b.outcome, "{backend:?}: job {} outcome diverged", a.id);
            assert_eq!(
                a.messages, b.messages,
                "{backend:?}: job {} negotiation traffic diverged",
                a.id
            );
            assert_eq!(a.strategy, b.strategy);
            assert_eq!(a.submit, b.submit);
            assert_eq!(a.budget, b.budget);
            assert_eq!(a.deadline, b.deadline);
        }
        assert_eq!(ideal.sim_end, other.sim_end);

        // Per-resource statistics and GridBank balances agree exactly.
        for (ra, rb) in ideal.resources.iter().zip(&other.resources) {
            assert_eq!(ra.accepted, rb.accepted, "{backend:?}");
            assert_eq!(ra.rejected, rb.rejected);
            assert_eq!(ra.processed_locally, rb.processed_locally);
            assert_eq!(ra.migrated, rb.migrated);
            assert_eq!(ra.remote_jobs_processed, rb.remote_jobs_processed);
            assert_eq!(ra.utilization, rb.utilization);
            assert!((ra.incentive - rb.incentive).abs() < 1e-12);
        }
        assert!(ideal.bank.is_balanced() && other.bank.is_balanced());

        // Negotiation traffic is identical at every granularity…
        assert_eq!(ideal.messages.total_messages(), other.messages.total_messages());
        assert_eq!(ideal.messages.per_job(), other.messages.per_job());
        assert_eq!(ideal.messages.per_gfa_summary(), other.messages.per_gfa_summary());

        // …while directory (and, for MAAN, publish) traffic is where the
        // backends are allowed — and expected — to differ: both issued the
        // same queries; the ideal backend charged the ⌈log₂ 8⌉ = 3 model
        // per routed lookup, the overlay backends charged measured hops
        // (under MAAN the advances also carry boundary crossings over the
        // distributed rank data).
        assert_eq!(ideal.directory_queries, other.directory_queries, "{backend:?}");
        assert!(ideal.directory_queries > 0);
        assert!(other.directory_avg_route_messages >= 1.0);
        assert!(other.messages.directory_messages() > 0);
        // (No assert that the totals *differ*: nothing forbids the measured
        // hop total from coinciding with the model for some seed — the
        // invariant is that directory/publish traffic is the only place
        // backends may diverge.)
        assert!(other.messages.directory_seconds() > 0.0);
        if backend == DirectoryBackend::Maan {
            // 8 resources × ≥ 2 routed puts each: the publish class is live.
            assert!(
                other.directory_publish_messages() >= 16,
                "MAAN must charge its initial publishes (got {})",
                other.directory_publish_messages()
            );
            assert!(other.messages.publish_seconds() > 0.0);
        } else {
            assert_eq!(other.directory_publish_messages(), 0);
        }
    }
}

#[test]
fn departures_are_outcome_identical_across_backends() {
    // The unsubscribe primitive must behave identically through every
    // backend when exercised mid-run.
    let options = WorkloadOptions::quick();
    let run = |backend| {
        let setup = paper_workloads(PopulationProfile::new(50), &options);
        run_federation(
            setup.resources,
            setup.workloads,
            FederationConfig {
                mode: SchedulingMode::Economy,
                seed: options.seed,
                utilization_horizon: Some(options.duration),
                directory: backend,
                // NASA iPSC (index 4, the fastest) departs mid-trace; LANL
                // Origin (index 3, the cheapest) re-prices shortly after.
                departures: vec![(4, options.duration * 0.25)],
                repricings: vec![(3, options.duration * 0.5, 6.0)],
                ..FederationConfig::default()
            },
        )
    };
    let ideal = run(DirectoryBackend::Ideal);
    for backend in [DirectoryBackend::Chord, DirectoryBackend::Maan] {
        let other = run(backend);
        assert_eq!(
            ideal.digest.outcomes, other.digest.outcomes,
            "{backend:?}: outcome digest diverged under mid-run mutations"
        );
        assert_eq!(ideal.jobs.len(), other.jobs.len());
        for (a, b) in ideal.jobs.iter().zip(&other.jobs) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.outcome, b.outcome, "{backend:?}");
        }
        assert_eq!(ideal.messages.total_messages(), other.messages.total_messages());
        assert!(ideal.bank.is_balanced() && other.bank.is_balanced());
        if backend == DirectoryBackend::Maan {
            // The departure's routed removes and the repricing's routed move
            // land in the publish class on top of the initial subscribes.
            assert!(
                other.directory_publish_messages() > 16,
                "mid-run mutations must add publish traffic (got {})",
                other.directory_publish_messages()
            );
        }
    }
    // The departed resource executed strictly less remote work than in the
    // undisturbed run of `backends_differ_only_in_directory_traffic`.
    let undisturbed = run_with(DirectoryBackend::Ideal);
    assert!(
        ideal.resources[4].remote_jobs_processed <= undisturbed.resources[4].remote_jobs_processed,
        "a departed resource cannot attract more remote work"
    );
}
